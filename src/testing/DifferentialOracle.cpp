//===-- testing/DifferentialOracle.cpp - Cross-engine oracle --------------===//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//

#include "testing/DifferentialOracle.h"

#include <algorithm>
#include <optional>

#include "baseline/CbaBaseline.h"
#include "core/CbaEngine.h"
#include "core/CubaDriver.h"
#include "core/FcrCheck.h"
#include "core/SymbolicEngine.h"

using namespace cuba;
using namespace cuba::testing;

namespace {

std::string describeBound(const std::optional<unsigned> &B) {
  return B ? "k=" + std::to_string(*B) : "none";
}

/// Renders the symmetric difference of two sorted visible-state vectors.
std::string setDiff(const Cpds &C, const std::vector<VisibleState> &A,
                    const std::vector<VisibleState> &B) {
  std::string Out;
  std::vector<VisibleState> OnlyA, OnlyB;
  std::set_difference(A.begin(), A.end(), B.begin(), B.end(),
                      std::back_inserter(OnlyA));
  std::set_difference(B.begin(), B.end(), A.begin(), A.end(),
                      std::back_inserter(OnlyB));
  for (const VisibleState &V : OnlyA)
    Out += " explicit-only " + toString(C, V);
  for (const VisibleState &V : OnlyB)
    Out += " symbolic-only " + toString(C, V);
  return Out;
}

const char *baselineName(BaselineEngine E) {
  switch (E) {
  case BaselineEngine::Explicit:
    return "baseline-explicit";
  case BaselineEngine::ExplicitBdd:
    return "baseline-bdd";
  case BaselineEngine::Symbolic:
    return "baseline-symbolic";
  }
  return "?";
}

} // namespace

std::string OracleReport::str() const {
  std::string Out;
  for (const std::string &M : Mismatches) {
    if (!Out.empty())
      Out += "\n";
    Out += M;
  }
  return Out;
}

OracleReport
cuba::testing::runDifferentialOracle(const CpdsFile &File,
                                     const OracleOptions &Opts) {
  OracleReport Rep;
  const Cpds &C = File.System;
  const SafetyProperty &Prop = File.Property;
  auto Mismatch = [&](std::string S) {
    Rep.Mismatches.push_back(std::move(S));
  };

  // Phase 1: lockstep rounds of the explicit and symbolic engines,
  // comparing the newly discovered visible states at every bound.
  CbaEngine Exp(C, Opts.Limits);
  SymbolicEngine Sym(C, Opts.Limits);
  Exp.setParallel(Opts.Pool);
  Sym.setParallel(Opts.Pool);
  std::optional<unsigned> ExpBug, SymBug;
  uint64_t VisibleCounter = 0; // For the InjectDropVisible testing hook.
  unsigned K = 0;
  while (true) {
    std::vector<VisibleState> NewE = Exp.newVisibleThisRound();
    std::vector<VisibleState> NewS = Sym.newVisibleThisRound();
    for (auto It = NewE.begin(); It != NewE.end();) {
      if (++VisibleCounter == Opts.InjectDropVisible)
        It = NewE.erase(It);
      else
        ++It;
    }
    if (NewE != NewS)
      Mismatch("k=" + std::to_string(K) + ": T(R_k) and T(S_k) differ:" +
               setDiff(C, NewE, NewS));
    for (const VisibleState &V : NewE)
      if (!ExpBug && Prop.violatedBy(V))
        ExpBug = K;
    for (const VisibleState &V : NewS)
      if (!SymBug && Prop.violatedBy(V))
        SymBug = K;
    Rep.KCompared = K;
    if (K >= Opts.MaxK)
      break;
    // Advance both engines; a budget stop truncates the comparison (the
    // interrupted round's discoveries are incomplete by construction).
    Rep.ExplicitExhausted =
        Exp.advance() == CbaEngine::RoundStatus::Exhausted;
    Rep.SymbolicExhausted =
        Sym.advance() == SymbolicEngine::RoundStatus::Exhausted;
    if (Rep.ExplicitExhausted || Rep.SymbolicExhausted) {
      Rep.ExplicitReason = Exp.limits().reason();
      Rep.SymbolicReason = Sym.limits().reason();
      break;
    }
    ++K;
  }
  Rep.PeakBytes =
      std::max(Exp.limits().peakBytes(), Sym.limits().peakBytes());
  if (ExpBug != SymBug)
    Mismatch("first property violation differs: explicit " +
             describeBound(ExpBug) + " vs symbolic " + describeBound(SymBug));

  // Phase 2: the baseline at bound K must reproduce the explicit engine's
  // R_K facts, whichever store it uses.
  if (Opts.CheckBaselines && !Rep.ExplicitExhausted &&
      !Rep.SymbolicExhausted && Opts.InjectDropVisible == 0) {
    for (BaselineEngine BE :
         {BaselineEngine::Explicit, BaselineEngine::ExplicitBdd,
          BaselineEngine::Symbolic}) {
      BaselineResult B =
          runCbaBaseline(C, Prop, Rep.KCompared, Opts.Limits, BE);
      if (!B.CompletedToBound)
        continue; // Budget ran out in the rerun; nothing to claim.
      if (B.BugBound != ExpBug)
        Mismatch(std::string(baselineName(BE)) + ": bug bound " +
                 describeBound(B.BugBound) + " vs engine " +
                 describeBound(ExpBug));
      if (!B.BugBound && B.VisibleStates != Exp.visibleSize())
        Mismatch(std::string(baselineName(BE)) + ": |T(R_" +
                 std::to_string(Rep.KCompared) + ")| = " +
                 std::to_string(B.VisibleStates) + " vs engine " +
                 std::to_string(Exp.visibleSize()));
    }
  }

  // Phase 3: FCR self-consistency.  Both runs get fresh trackers with
  // identical budgets, so the determinism comparison stays meaningful
  // (fuzz budgets set MaxMillis = 0; exhaustion is then step-exact).
  LimitTracker FcrL1(Opts.Limits), FcrL2(Opts.Limits);
  FcrResult F1 = checkFcr(C, &FcrL1);
  FcrResult F2 = checkFcr(C, &FcrL2);
  if (F1.Holds != F2.Holds || F1.Complete != F2.Complete ||
      F1.ThreadFinite != F2.ThreadFinite)
    Mismatch("checkFcr is nondeterministic");
  if (F1.ThreadFinite.size() != C.numThreads())
    Mismatch("checkFcr reported " + std::to_string(F1.ThreadFinite.size()) +
             " per-thread verdicts for " + std::to_string(C.numThreads()) +
             " threads");
  bool AllFinite = std::all_of(F1.ThreadFinite.begin(), F1.ThreadFinite.end(),
                               [](bool B) { return B; });
  if (F1.Holds != (F1.Complete && AllFinite))
    Mismatch("checkFcr verdict disagrees with its per-thread results");

  // Phase 4: the two top-level procedures must agree whenever both
  // conclude within budget.
  if (Opts.CheckDrivers && Opts.InjectDropVisible == 0) {
    RunOptions RO;
    RO.Limits = Opts.Limits;
    RO.Pool = Opts.Pool;
    ExplicitCombinedResult DE = runExplicitCombined(C, Prop, RO);
    SymbolicRunResult DS = runAlg3Symbolic(C, Prop, RO);
    if (!DE.Run.Exhausted && !DS.Run.Exhausted) {
      if (DE.Run.outcome() != DS.Run.outcome())
        Mismatch(std::string("driver verdicts differ: explicit ") +
                 outcomeName(DE.Run.outcome()) + " vs symbolic " +
                 outcomeName(DS.Run.outcome()));
      else if (DE.Run.BugBound != DS.Run.BugBound)
        Mismatch("driver bug bounds differ: explicit " +
                 describeBound(DE.Run.BugBound) + " vs symbolic " +
                 describeBound(DS.Run.BugBound));
      else if (DE.Run.outcome() == Outcome::Proved &&
               DE.Run.VisibleStates != DS.Run.VisibleStates)
        Mismatch("proved with different visible-state counts: explicit " +
                 std::to_string(DE.Run.VisibleStates) + " vs symbolic " +
                 std::to_string(DS.Run.VisibleStates));
    }
  }

  return Rep;
}

//===-- tests/TraceDeterminismTest.cpp - trace content vs --jobs ----------===//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability determinism contract (obs/Trace.h): span content is
/// a pure function of serially committed engine state, so a trace
/// collected at any `--jobs`, stripped by the documented rule -- drop
/// "wall"-category and ph:"M" lines, zero ts/dur/tid -- is byte-identical
/// to the serial one.  Checked for both engines on the paper models plus
/// 20 fuzz-generator seeds at jobs 1 / 2 / 8, alongside the deterministic
/// half of the metrics snapshot.  A schema-sanity pass also checks that
/// the unstripped spans nest properly per thread track (children inside
/// parents, siblings disjoint), which is what makes the Perfetto view
/// readable.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <string>
#include <vector>

#include "core/CbaEngine.h"
#include "core/SymbolicEngine.h"
#include "exec/ThreadPool.h"
#include "models/Models.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "testing/RandomCpds.h"

using namespace cuba;

namespace {

/// Mirrors the fuzz harness budget; no wall-clock axis so how far a run
/// gets is machine-independent.
const ResourceLimits FuzzLimits{10'000, 1'000'000, 8, 0};

constexpr unsigned MaxK = 6;

/// The documented stripping rule, implemented as the line-local text
/// transformation the one-event-per-line rendering guarantees.  Trailing
/// commas are dropped too: removing a line whose successor was the last
/// event must not leave the two sides differing by a separator.
std::string stripTrace(const std::string &Doc) {
  std::string Out;
  size_t Pos = 0;
  while (Pos < Doc.size()) {
    size_t Eol = Doc.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Doc.size();
    std::string Line = Doc.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    if (Line.find("\"cat\": \"wall\"") != std::string::npos ||
        Line.find("\"ph\": \"M\"") != std::string::npos)
      continue;
    for (const char *Key : {"\"ts\": ", "\"dur\": ", "\"tid\": "}) {
      size_t K = Line.find(Key);
      if (K == std::string::npos)
        continue;
      size_t V = K + std::strlen(Key);
      size_t E = V;
      while (E < Line.size() &&
             std::isdigit(static_cast<unsigned char>(Line[E])))
        ++E;
      Line.replace(V, E - V, "0");
    }
    if (!Line.empty() && Line.back() == ',')
      Line.pop_back();
    Out += Line;
    Out += '\n';
  }
  return Out;
}

/// The deterministic half of a metrics snapshot, as comparable tuples.
std::vector<std::tuple<std::string, int, uint64_t, std::vector<uint64_t>>>
detMetrics() {
  std::vector<std::tuple<std::string, int, uint64_t, std::vector<uint64_t>>>
      Out;
  for (const obs::InstrumentSnapshot &S : obs::Metrics::snapshot())
    if (S.Deterministic)
      Out.emplace_back(S.Name, static_cast<int>(S.K), S.Value, S.Buckets);
  return Out;
}

/// One traced engine run: resets the registry, collects the trace, and
/// returns (rendered trace, deterministic metrics).
struct TracedRun {
  std::string Trace;
  std::vector<std::tuple<std::string, int, uint64_t, std::vector<uint64_t>>>
      Det;
};

TracedRun runSymbolic(const Cpds &C, exec::ThreadPool *Pool) {
  obs::Metrics::resetAll();
  obs::Trace::begin();
  SymbolicEngine E(C, FuzzLimits);
  E.setParallel(Pool);
  while (E.bound() < MaxK &&
         E.advance() == SymbolicEngine::RoundStatus::Ok)
    ;
  obs::Trace::end();
  return {obs::Trace::render(), detMetrics()};
}

TracedRun runExplicit(const Cpds &C, exec::ThreadPool *Pool) {
  obs::Metrics::resetAll();
  obs::Trace::begin();
  CbaEngine E(C, FuzzLimits);
  E.setParallel(Pool);
  while (E.bound() < MaxK && E.advance() == CbaEngine::RoundStatus::Ok)
    ;
  obs::Trace::end();
  return {obs::Trace::render(), detMetrics()};
}

/// One parsed complete event (ph:"X" lines only).
struct ParsedSpan {
  uint64_t Ts = 0;
  uint64_t Dur = 0;
  uint32_t Tid = 0;
};

uint64_t fieldOf(const std::string &Line, const char *Key) {
  size_t K = Line.find(Key);
  EXPECT_NE(K, std::string::npos) << Line;
  if (K == std::string::npos)
    return 0;
  return std::strtoull(Line.c_str() + K + std::strlen(Key), nullptr, 10);
}

/// Schema sanity: per thread track, spans sorted by (ts, -dur) must form
/// a proper nesting -- every span either starts after the enclosing one
/// ended or ends inside it.  The 1us tolerance absorbs the independent
/// flooring of ts and dur from nanoseconds.
void expectProperNesting(const std::string &Doc) {
  std::vector<std::vector<ParsedSpan>> PerTid;
  size_t Pos = 0;
  while (Pos < Doc.size()) {
    size_t Eol = Doc.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Doc.size();
    std::string Line = Doc.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    if (Line.find("\"ph\": \"X\"") == std::string::npos)
      continue;
    ParsedSpan S;
    S.Ts = fieldOf(Line, "\"ts\": ");
    S.Dur = fieldOf(Line, "\"dur\": ");
    S.Tid = static_cast<uint32_t>(fieldOf(Line, "\"tid\": "));
    if (S.Tid >= PerTid.size())
      PerTid.resize(S.Tid + 1);
    PerTid[S.Tid].push_back(S);
  }
  for (std::vector<ParsedSpan> &Track : PerTid) {
    std::sort(Track.begin(), Track.end(),
              [](const ParsedSpan &A, const ParsedSpan &B) {
                return A.Ts != B.Ts ? A.Ts < B.Ts : A.Dur > B.Dur;
              });
    std::vector<ParsedSpan> Stack;
    for (const ParsedSpan &S : Track) {
      while (!Stack.empty() && Stack.back().Ts + Stack.back().Dur <= S.Ts)
        Stack.pop_back();
      if (!Stack.empty()) {
        EXPECT_LE(S.Ts + S.Dur, Stack.back().Ts + Stack.back().Dur + 1)
            << "span at ts=" << S.Ts << " overflows its parent";
      }
      Stack.push_back(S);
    }
  }
}

/// The instances under test: the paper models plus 20 fuzz seeds.
std::vector<CpdsFile> instances() {
  std::vector<CpdsFile> Out;
  Out.push_back(models::buildFig1());
  Out.push_back(models::buildBluetooth(3, 1, 1));
  Out.push_back(models::buildBluetooth(3, 2, 2));
  for (uint64_t Seed = 1; Seed <= 20; ++Seed)
    Out.push_back(cuba::testing::generateRandomCpds(
        Seed, cuba::testing::cornerShapeOptions(Seed)));
  return Out;
}

class TraceDeterminismTest : public ::testing::Test {
protected:
  exec::ThreadPool Pool2{2};
  exec::ThreadPool Pool8{8};
};

TEST_F(TraceDeterminismTest, SymbolicTraceMatchesAcrossJobCounts) {
  unsigned Idx = 0;
  for (const CpdsFile &File : instances()) {
    TracedRun Serial = runSymbolic(File.System, nullptr);
    std::string Stripped = stripTrace(Serial.Trace);
    EXPECT_FALSE(Stripped.find("\"name\": \"round\"") == std::string::npos)
        << "instance " << Idx << " produced no round spans";
    for (exec::ThreadPool *Pool : {&Pool2, &Pool8}) {
      TracedRun Par = runSymbolic(File.System, Pool);
      EXPECT_EQ(Stripped, stripTrace(Par.Trace))
          << "instance " << Idx << " jobs " << Pool->jobs();
      EXPECT_EQ(Serial.Det, Par.Det)
          << "instance " << Idx << " jobs " << Pool->jobs();
    }
    if (HasFailure())
      break; // One instance's diff is enough diagnostics.
    ++Idx;
  }
}

TEST_F(TraceDeterminismTest, ExplicitTraceMatchesAcrossJobCounts) {
  unsigned Idx = 0;
  for (const CpdsFile &File : instances()) {
    TracedRun Serial = runExplicit(File.System, nullptr);
    std::string Stripped = stripTrace(Serial.Trace);
    for (exec::ThreadPool *Pool : {&Pool2, &Pool8}) {
      TracedRun Par = runExplicit(File.System, Pool);
      EXPECT_EQ(Stripped, stripTrace(Par.Trace))
          << "instance " << Idx << " jobs " << Pool->jobs();
      EXPECT_EQ(Serial.Det, Par.Det)
          << "instance " << Idx << " jobs " << Pool->jobs();
    }
    if (HasFailure())
      break;
    ++Idx;
  }
}

TEST_F(TraceDeterminismTest, SpansNestProperlyPerThreadTrack) {
  // Unstripped traces, including the wall-category spans and worker
  // attribution: the timeline must still be a forest per tid.
  CpdsFile Bluetooth = models::buildBluetooth(3, 2, 2);
  for (exec::ThreadPool *Pool :
       {static_cast<exec::ThreadPool *>(nullptr), &Pool2, &Pool8}) {
    expectProperNesting(runSymbolic(Bluetooth.System, Pool).Trace);
    expectProperNesting(runExplicit(Bluetooth.System, Pool).Trace);
  }
}

TEST_F(TraceDeterminismTest, WorkerAttributionAppearsAthigherJobCounts) {
  // With 8 jobs on a model with enough pending groups, at least one
  // saturate/extract span must be attributed to a non-driver worker --
  // the plumbing that carries (worker, ts) from the speculative phase to
  // the serial commit.
  CpdsFile Bluetooth = models::buildBluetooth(3, 2, 2);
  TracedRun Par = runSymbolic(Bluetooth.System, &Pool8);
  bool NonDriver = false;
  size_t Pos = 0;
  while ((Pos = Par.Trace.find("\"name\": \"saturate\"", Pos)) !=
         std::string::npos) {
    size_t Eol = Par.Trace.find('\n', Pos);
    std::string Line = Par.Trace.substr(Pos, Eol - Pos);
    if (fieldOf(Line, "\"tid\": ") != 0)
      NonDriver = true;
    Pos = Eol;
  }
  if (!NonDriver) {
    // On a loaded or single-CPU host the caller can claim every task
    // before a pool thread wakes; all-driver attribution is then
    // correct.  Only fail when a pool worker provably ran tasks yet no
    // span was attributed to it.
    std::vector<exec::WorkerStats> WS = Pool8.workerStats();
    uint64_t PoolTasks = 0;
    for (size_t I = 1; I < WS.size(); ++I)
      PoolTasks += WS[I].Tasks;
    if (PoolTasks == 0)
      GTEST_SKIP() << "pool workers never claimed a task on this host";
  }
  EXPECT_TRUE(NonDriver)
      << "pool workers ran tasks but no saturation was attributed to one";
}

} // namespace

//===-- tests/ParallelDeterminismTest.cpp - jobs-N == jobs-1 pinning ------===//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The determinism contract of src/exec/: running either engine on a
/// thread pool of any size must produce results bit-identical to the
/// serial path -- verdicts, round-by-round sizes, frontier contents in
/// discovery order (a proxy for dense id assignment), visibleFirstSeen
/// ordering, budget accounting, and interned-language counts.  Checked
/// over 72 seeded random instances (the fuzz generator's corner-shape
/// presets) plus paper models, at jobs 1 / 2 / 8, including runs whose
/// budget exhausts mid-round -- the trickiest path, since the parallel
/// commit must stop at exactly the serial charge.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/Algorithms.h"
#include "core/CbaEngine.h"
#include "core/CommitShards.h"
#include "core/SymbolicAlgorithms.h"
#include "core/SymbolicEngine.h"
#include "exec/ThreadPool.h"
#include "models/Models.h"
#include "support/Statistic.h"
#include "testing/RandomCpds.h"

using namespace cuba;

namespace {

/// Budgets mirror the fuzz harness: tight enough that corner-shape
/// instances regularly exhaust (exercising mid-round truncation), with
/// no wall-clock cutoff so runs are machine-independent.
const ResourceLimits FuzzLimits{10'000, 1'000'000, 8, 0};
/// A much tighter budget that forces exhaustion inside a round on
/// almost every instance.
const ResourceLimits TinyLimits{40, 400, 8, 0};

constexpr unsigned MaxK = 6;

/// Everything observable about an explicit run, round by round.
struct ExplicitTrace {
  std::vector<int> Statuses;
  std::vector<size_t> Reached, Visible;
  std::vector<std::vector<GlobalState>> Frontiers;
  std::vector<std::pair<VisibleState, unsigned>> FirstSeen;
  uint64_t Steps = 0, States = 0, PeakBytes = 0;

  bool operator==(const ExplicitTrace &) const = default;
};

ExplicitTrace runExplicit(const Cpds &C, const ResourceLimits &L,
                          exec::ThreadPool *Pool) {
  CbaEngine E(C, L);
  E.setParallel(Pool);
  ExplicitTrace T;
  T.Frontiers.push_back(E.frontier());
  while (E.bound() < MaxK) {
    bool Exhausted = E.advance() == CbaEngine::RoundStatus::Exhausted;
    T.Statuses.push_back(Exhausted ? 1 : 0);
    T.Reached.push_back(E.reachedSize());
    T.Visible.push_back(E.visibleSize());
    T.Frontiers.push_back(E.frontier());
    if (Exhausted)
      break;
  }
  T.FirstSeen = E.visibleFirstSeen();
  T.Steps = E.limits().steps();
  T.States = E.limits().states();
  T.PeakBytes = E.limits().peakBytes();
  return T;
}

/// Everything observable about a symbolic run, round by round.  The
/// per-round language-arena size pins DfaId assignment: ids are dense
/// and append-only, so equal counts at every round plus equal visible
/// sets mean the interning schedule matched.  The per-round saturation
/// count and retained-cache footprint pin the eviction schedule: evicting
/// a different set (or at a different round) at some job count would
/// diverge here even if the verdicts happened to agree.
struct SymbolicTrace {
  std::vector<int> Statuses;
  std::vector<size_t> SymStates, Visible, Languages, Saturations;
  std::vector<uint64_t> CacheBytes;
  std::vector<std::vector<VisibleState>> NewPerRound;
  std::vector<std::pair<VisibleState, unsigned>> FirstSeen;
  uint64_t Steps = 0, States = 0, PeakBytes = 0;

  bool operator==(const SymbolicTrace &) const = default;
};

SymbolicTrace runSymbolic(const Cpds &C, const ResourceLimits &L,
                          exec::ThreadPool *Pool) {
  SymbolicEngine E(C, L);
  E.setParallel(Pool);
  SymbolicTrace T;
  while (E.bound() < MaxK) {
    bool Exhausted = E.advance() == SymbolicEngine::RoundStatus::Exhausted;
    T.Statuses.push_back(Exhausted ? 1 : 0);
    T.SymStates.push_back(E.symbolicStateCount());
    T.Visible.push_back(E.visibleSize());
    T.Languages.push_back(E.languageStore().size());
    T.Saturations.push_back(E.saturationCount());
    T.CacheBytes.push_back(E.retainedSatBytes());
    T.NewPerRound.push_back(E.newVisibleThisRound());
    if (Exhausted)
      break;
  }
  T.FirstSeen = E.visibleFirstSeen();
  T.Steps = E.limits().steps();
  T.States = E.limits().states();
  T.PeakBytes = E.limits().peakBytes();
  return T;
}

void expectSameExplicit(const ExplicitTrace &Serial, const ExplicitTrace &Par,
                        uint64_t Seed, const char *Tag) {
  EXPECT_EQ(Serial.Statuses, Par.Statuses) << Tag << " seed " << Seed;
  EXPECT_EQ(Serial.Reached, Par.Reached) << Tag << " seed " << Seed;
  EXPECT_EQ(Serial.Visible, Par.Visible) << Tag << " seed " << Seed;
  EXPECT_EQ(Serial.Frontiers == Par.Frontiers, true)
      << Tag << " frontier divergence at seed " << Seed;
  EXPECT_EQ(Serial.FirstSeen == Par.FirstSeen, true)
      << Tag << " first-seen divergence at seed " << Seed;
  EXPECT_EQ(Serial.Steps, Par.Steps) << Tag << " seed " << Seed;
  EXPECT_EQ(Serial.States, Par.States) << Tag << " seed " << Seed;
  EXPECT_EQ(Serial.PeakBytes, Par.PeakBytes) << Tag << " seed " << Seed;
}

void expectSameSymbolic(const SymbolicTrace &Serial, const SymbolicTrace &Par,
                        uint64_t Seed, const char *Tag) {
  EXPECT_EQ(Serial.Statuses, Par.Statuses) << Tag << " seed " << Seed;
  EXPECT_EQ(Serial.SymStates, Par.SymStates) << Tag << " seed " << Seed;
  EXPECT_EQ(Serial.Visible, Par.Visible) << Tag << " seed " << Seed;
  EXPECT_EQ(Serial.Languages, Par.Languages) << Tag << " seed " << Seed;
  EXPECT_EQ(Serial.Saturations, Par.Saturations) << Tag << " seed " << Seed;
  EXPECT_EQ(Serial.CacheBytes, Par.CacheBytes)
      << Tag << " eviction-schedule divergence at seed " << Seed;
  EXPECT_EQ(Serial.NewPerRound == Par.NewPerRound, true)
      << Tag << " per-round visible divergence at seed " << Seed;
  EXPECT_EQ(Serial.FirstSeen == Par.FirstSeen, true)
      << Tag << " first-seen divergence at seed " << Seed;
  EXPECT_EQ(Serial.Steps, Par.Steps) << Tag << " seed " << Seed;
  EXPECT_EQ(Serial.States, Par.States) << Tag << " seed " << Seed;
  EXPECT_EQ(Serial.PeakBytes, Par.PeakBytes) << Tag << " seed " << Seed;
}

class ParallelDeterminismTest : public ::testing::Test {
protected:
  exec::ThreadPool Pool2{2};
  exec::ThreadPool Pool8{8};
};

TEST_F(ParallelDeterminismTest, EnginesMatchAcrossJobCountsOnRandomCpds) {
  for (uint64_t Seed = 1; Seed <= 72; ++Seed) {
    CpdsFile File = cuba::testing::generateRandomCpds(
        Seed, cuba::testing::cornerShapeOptions(Seed));
    for (const ResourceLimits &L : {FuzzLimits, TinyLimits}) {
      const char *Tag = L.MaxStates == TinyLimits.MaxStates ? "tiny" : "fuzz";
      ExplicitTrace E1 = runExplicit(File.System, L, nullptr);
      expectSameExplicit(E1, runExplicit(File.System, L, &Pool2), Seed, Tag);
      expectSameExplicit(E1, runExplicit(File.System, L, &Pool8), Seed, Tag);
      SymbolicTrace S1 = runSymbolic(File.System, L, nullptr);
      expectSameSymbolic(S1, runSymbolic(File.System, L, &Pool2), Seed, Tag);
      expectSameSymbolic(S1, runSymbolic(File.System, L, &Pool8), Seed, Tag);
    }
    if (HasFailure())
      break; // One seed's divergence is enough diagnostics.
  }
}

TEST_F(ParallelDeterminismTest, DriversMatchAcrossJobCounts) {
  for (uint64_t Seed = 101; Seed <= 130; ++Seed) {
    CpdsFile File = cuba::testing::generateRandomCpds(
        Seed, cuba::testing::cornerShapeOptions(Seed));
    RunOptions Base;
    Base.Limits = FuzzLimits;

    RunOptions Jobs2 = Base, Jobs8 = Base;
    Jobs2.Pool = &Pool2;
    Jobs8.Pool = &Pool8;

    ExplicitCombinedResult E1 =
        runExplicitCombined(File.System, File.Property, Base);
    SymbolicRunResult S1 = runAlg3Symbolic(File.System, File.Property, Base);
    for (const RunOptions &RO : {Jobs2, Jobs8}) {
      ExplicitCombinedResult EP =
          runExplicitCombined(File.System, File.Property, RO);
      EXPECT_EQ(E1.Run.BugBound, EP.Run.BugBound) << "seed " << Seed;
      EXPECT_EQ(E1.Run.ConvergedAt, EP.Run.ConvergedAt) << "seed " << Seed;
      EXPECT_EQ(E1.Run.Exhausted, EP.Run.Exhausted) << "seed " << Seed;
      EXPECT_EQ(E1.Run.KMax, EP.Run.KMax) << "seed " << Seed;
      EXPECT_EQ(E1.Run.StatesStored, EP.Run.StatesStored) << "seed " << Seed;
      EXPECT_EQ(E1.Run.VisibleStates, EP.Run.VisibleStates)
          << "seed " << Seed;
      EXPECT_EQ(E1.Run.Witness, EP.Run.Witness) << "seed " << Seed;
      EXPECT_EQ(E1.RkCollapse, EP.RkCollapse) << "seed " << Seed;
      EXPECT_EQ(E1.TkCollapse, EP.TkCollapse) << "seed " << Seed;

      SymbolicRunResult SP =
          runAlg3Symbolic(File.System, File.Property, RO);
      EXPECT_EQ(S1.Run.BugBound, SP.Run.BugBound) << "seed " << Seed;
      EXPECT_EQ(S1.Run.ConvergedAt, SP.Run.ConvergedAt) << "seed " << Seed;
      EXPECT_EQ(S1.Run.Exhausted, SP.Run.Exhausted) << "seed " << Seed;
      EXPECT_EQ(S1.Run.KMax, SP.Run.KMax) << "seed " << Seed;
      EXPECT_EQ(S1.Run.StatesStored, SP.Run.StatesStored) << "seed " << Seed;
      EXPECT_EQ(S1.Run.VisibleStates, SP.Run.VisibleStates)
          << "seed " << Seed;
      EXPECT_EQ(S1.Run.Witness, SP.Run.Witness) << "seed " << Seed;
      EXPECT_EQ(S1.TkCollapse, SP.TkCollapse) << "seed " << Seed;
      EXPECT_EQ(S1.SFixpoint, SP.SFixpoint) << "seed " << Seed;
      EXPECT_EQ(S1.SymbolicStates, SP.SymbolicStates) << "seed " << Seed;
      EXPECT_EQ(S1.DistinctLanguages, SP.DistinctLanguages)
          << "seed " << Seed;
    }
    if (HasFailure())
      break;
  }
}

TEST_F(ParallelDeterminismTest, PaperModelsMatchAcrossJobCounts) {
  // Deeper, wider instances than the random corner shapes: the
  // Bluetooth driver (both the narrow and the wide configuration) and
  // Fig. 1, with a budget loose enough to run all MaxK rounds.
  const ResourceLimits Loose{200'000, 50'000'000, 8, 0};
  for (CpdsFile File :
       {models::buildFig1(), models::buildBluetooth(3, 1, 1),
        models::buildBluetooth(3, 2, 2)}) {
    ExplicitTrace E1 = runExplicit(File.System, Loose, nullptr);
    expectSameExplicit(E1, runExplicit(File.System, Loose, &Pool2), 0,
                       "model");
    expectSameExplicit(E1, runExplicit(File.System, Loose, &Pool8), 0,
                       "model");
    SymbolicTrace S1 = runSymbolic(File.System, Loose, nullptr);
    expectSameSymbolic(S1, runSymbolic(File.System, Loose, &Pool2), 0,
                       "model");
    expectSameSymbolic(S1, runSymbolic(File.System, Loose, &Pool8), 0,
                       "model");
  }
}

TEST_F(ParallelDeterminismTest, MemoryBudgetMatchesAcrossJobCounts) {
  // A MaxBytes budget tight enough that many corner-shape instances
  // exhaust on memory mid-run.  Logical byte accounting is checked only
  // at serially ordered commit points, so the exhaustion round, the peak
  // figure, and everything downstream must be bit-identical at any job
  // count.
  ResourceLimits MemLimits = FuzzLimits;
  MemLimits.MaxBytes = 64 * 1024;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    CpdsFile File = cuba::testing::generateRandomCpds(
        Seed, cuba::testing::cornerShapeOptions(Seed));
    ExplicitTrace E1 = runExplicit(File.System, MemLimits, nullptr);
    expectSameExplicit(E1, runExplicit(File.System, MemLimits, &Pool2), Seed,
                       "mem");
    expectSameExplicit(E1, runExplicit(File.System, MemLimits, &Pool8), Seed,
                       "mem");
    SymbolicTrace S1 = runSymbolic(File.System, MemLimits, nullptr);
    expectSameSymbolic(S1, runSymbolic(File.System, MemLimits, &Pool2), Seed,
                       "mem");
    expectSameSymbolic(S1, runSymbolic(File.System, MemLimits, &Pool8), Seed,
                       "mem");
    if (HasFailure())
      break;
  }
}

TEST_F(ParallelDeterminismTest, EvictionScheduleMatchesAcrossJobCounts) {
  // A cache-retention budget small enough that the symbolic engine
  // evicts saturations at almost every round boundary.  The per-round
  // saturation counts and retained-cache footprints in the trace pin the
  // eviction schedule itself, and re-running after eviction exercises
  // the cache-rebuild (SatCache remap) path at every job count.
  ResourceLimits EvictLimits = FuzzLimits;
  EvictLimits.MaxCacheBytes = 2 * 1024;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    CpdsFile File = cuba::testing::generateRandomCpds(
        Seed, cuba::testing::cornerShapeOptions(Seed));
    SymbolicTrace S1 = runSymbolic(File.System, EvictLimits, nullptr);
    expectSameSymbolic(S1, runSymbolic(File.System, EvictLimits, &Pool2),
                       Seed, "evict");
    expectSameSymbolic(S1, runSymbolic(File.System, EvictLimits, &Pool8),
                       Seed, "evict");
    if (HasFailure())
      break;
  }
  // The paper models, deeper and wider than the random corner shapes,
  // under a budget loose enough to run every round but a cache small
  // enough to keep evicting.
  ResourceLimits ModelEvict{200'000, 50'000'000, 8, 0};
  ModelEvict.MaxCacheBytes = 8 * 1024;
  for (CpdsFile File :
       {models::buildFig1(), models::buildBluetooth(3, 2, 2)}) {
    SymbolicTrace S1 = runSymbolic(File.System, ModelEvict, nullptr);
    expectSameSymbolic(S1, runSymbolic(File.System, ModelEvict, &Pool2), 0,
                       "model-evict");
    expectSameSymbolic(S1, runSymbolic(File.System, ModelEvict, &Pool8), 0,
                       "model-evict");
  }
}

TEST_F(ParallelDeterminismTest, ShardStressDegenerateShardCountsMatch) {
  // The sharded-commit stress pin: under a forced shard count of 1 every
  // state lands in the same shard (the fully serialized worst case for a
  // sharded commit -- an adversarial hash distribution cannot do worse),
  // and under 64 shards tiny instances scatter one state per shard
  // (maximal cross-shard id-assignment traffic).  Both degenerate
  // configurations must stay bit-identical to jobs-1, including budget
  // accounting: the shard count feeds the index's logical memoryBytes().
  for (unsigned Shards : {1u, 64u}) {
    core::ScopedCommitShardOverride Override(Shards);
    for (uint64_t Seed = 201; Seed <= 224; ++Seed) {
      CpdsFile File = cuba::testing::generateRandomCpds(
          Seed, cuba::testing::cornerShapeOptions(Seed));
      for (const ResourceLimits &L : {FuzzLimits, TinyLimits}) {
        const char *Tag =
            L.MaxStates == TinyLimits.MaxStates ? "shard-tiny" : "shard-fuzz";
        ExplicitTrace E1 = runExplicit(File.System, L, nullptr);
        expectSameExplicit(E1, runExplicit(File.System, L, &Pool2), Seed, Tag);
        expectSameExplicit(E1, runExplicit(File.System, L, &Pool8), Seed, Tag);
      }
      if (HasFailure())
        break;
    }
  }
}

TEST_F(ParallelDeterminismTest, ShardStressMidCommitExhaustionMatches) {
  // Budget exhaustion landing *inside* a commit, under both degenerate
  // shard counts: the cross-shard id-assignment pass must stop at
  // exactly the serial charge -- same exhaustion round, same Steps /
  // States / PeakBytes -- whether the charge that trips the limit is a
  // step, a state, or a memory charge.  The step/state budgets are
  // deliberately awkward (prime-ish, mid-level) so the stop point falls
  // mid-level rather than on a round boundary.
  std::vector<ResourceLimits> Budgets;
  for (uint64_t MaxStates : {23ull, 137ull}) {
    ResourceLimits L = FuzzLimits;
    L.MaxStates = MaxStates;
    Budgets.push_back(L);
  }
  {
    ResourceLimits L = FuzzLimits;
    L.MaxSteps = 311;
    Budgets.push_back(L);
  }
  for (uint64_t MaxBytes : {24ull * 1024, 48ull * 1024}) {
    ResourceLimits L = FuzzLimits;
    L.MaxBytes = MaxBytes;
    Budgets.push_back(L);
  }
  for (unsigned Shards : {1u, 64u}) {
    core::ScopedCommitShardOverride Override(Shards);
    for (uint64_t Seed = 201; Seed <= 216; ++Seed) {
      CpdsFile File = cuba::testing::generateRandomCpds(
          Seed, cuba::testing::cornerShapeOptions(Seed));
      for (const ResourceLimits &L : Budgets) {
        ExplicitTrace E1 = runExplicit(File.System, L, nullptr);
        expectSameExplicit(E1, runExplicit(File.System, L, &Pool2), Seed,
                           "shard-exhaust");
        expectSameExplicit(E1, runExplicit(File.System, L, &Pool8), Seed,
                           "shard-exhaust");
      }
      if (HasFailure())
        break;
    }
  }
}

TEST_F(ParallelDeterminismTest, EvictionOnPipelinedRoundMatches) {
  // Eviction decisions stay at the serial round boundary even once
  // rounds are pipelined (round r's extraction overlapping round r+1's
  // saturation): a cache budget tight enough to evict at nearly every
  // boundary, on instances deep enough that rounds >= 2 -- the rounds a
  // pipelined engine saturates speculatively -- carry cache pressure.
  // The per-round Saturations / CacheBytes trace pins both the eviction
  // schedule and the rebuild-after-evict path; any speculative
  // saturation that leaked a charge or an eviction taken off the serial
  // boundary diverges here.
  for (uint64_t CacheBytes : {1ull * 1024, 4ull * 1024}) {
    ResourceLimits L = FuzzLimits;
    L.MaxCacheBytes = CacheBytes;
    for (uint64_t Seed = 201; Seed <= 220; ++Seed) {
      CpdsFile File = cuba::testing::generateRandomCpds(
          Seed, cuba::testing::cornerShapeOptions(Seed));
      SymbolicTrace S1 = runSymbolic(File.System, L, nullptr);
      expectSameSymbolic(S1, runSymbolic(File.System, L, &Pool2), Seed,
                         "pipeline-evict");
      expectSameSymbolic(S1, runSymbolic(File.System, L, &Pool8), Seed,
                         "pipeline-evict");
      if (HasFailure())
        break;
    }
  }
  // The wide Bluetooth model under simultaneous cache pressure and a
  // step budget that exhausts mid-run: eviction, pipelining, and
  // truncation interacting on one deep instance.
  ResourceLimits Hard{200'000, 2'000'000, 8, 0};
  Hard.MaxCacheBytes = 6 * 1024;
  CpdsFile Wide = models::buildBluetooth(3, 2, 2);
  SymbolicTrace S1 = runSymbolic(Wide.System, Hard, nullptr);
  expectSameSymbolic(S1, runSymbolic(Wide.System, Hard, &Pool2), 0,
                     "pipeline-evict-model");
  expectSameSymbolic(S1, runSymbolic(Wide.System, Hard, &Pool8), 0,
                     "pipeline-evict-model");
}

TEST_F(ParallelDeterminismTest, ExpandAllAblationMatches) {
  // The ablation path (re-expanding every known state) shares the
  // parallel closure; pin it on one model.
  CpdsFile File = models::buildBluetooth(3, 1, 1);
  auto Run = [&](exec::ThreadPool *Pool) {
    CbaEngine E(File.System, FuzzLimits);
    E.setExpandAll(true);
    E.setParallel(Pool);
    while (E.bound() < 4 &&
           E.advance() == CbaEngine::RoundStatus::Ok)
      ;
    return std::make_tuple(E.reachedSize(), E.visibleSize(),
                           E.limits().steps(), E.visibleFirstSeen());
  };
  auto Serial = Run(nullptr);
  EXPECT_EQ(Serial == Run(&Pool2), true);
  EXPECT_EQ(Serial == Run(&Pool8), true);
}

TEST_F(ParallelDeterminismTest, SymbolicRoundsConsumePrefetchedSaturations) {
  // The round pipeline's wiring: across a sweep of parallel symbolic
  // runs, some next-round saturations must actually be served from the
  // previous round's prefetch batch (the counters are wall-side, so
  // only this liveness -- not a count -- is pinned; bit-identity of the
  // results is what the suites above pin).
  uint64_t Before = Statistics::value("symbolic.prefetch.hits");
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    CpdsFile File = cuba::testing::generateRandomCpds(
        Seed, cuba::testing::cornerShapeOptions(Seed));
    runSymbolic(File.System, FuzzLimits, &Pool2);
  }
  EXPECT_GT(Statistics::value("symbolic.prefetch.hits"), Before)
      << "twenty parallel symbolic sweeps never adopted a prefetch";
}

} // namespace

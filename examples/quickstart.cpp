//===-- examples/quickstart.cpp - First steps with the CUBA API ------------=//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the paper's Fig. 1 running example with the Cpds builder API,
/// runs the full CUBA procedure, and prints the verdict.  Start here.
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "core/CubaDriver.h"
#include "pds/CpdsIO.h"

using namespace cuba;

int main() {
  // A CPDS is built incrementally: shared states, threads, per-thread
  // stack alphabets and rules, the initial state -- then frozen once.
  Cpds C;
  QState Q0 = C.addSharedState("0");
  QState Q1 = C.addSharedState("1");
  QState Q2 = C.addSharedState("2");
  QState Q3 = C.addSharedState("3");
  C.setInitialShared(Q0);

  unsigned P1 = C.addThread("P1");
  Sym S1 = C.thread(P1).addSymbol("1");
  Sym S2 = C.thread(P1).addSymbol("2");
  C.thread(P1).addAction({Q0, S1, Q1, S2, EpsSym, "f1"});
  C.thread(P1).addAction({Q3, S2, Q0, S1, EpsSym, "f2"});
  C.setInitialStack(P1, {S1});

  unsigned P2 = C.addThread("P2");
  Sym S4 = C.thread(P2).addSymbol("4");
  Sym S5 = C.thread(P2).addSymbol("5");
  Sym S6 = C.thread(P2).addSymbol("6");
  C.thread(P2).addAction({Q0, S4, Q0, EpsSym, EpsSym, "b1"}); // pop
  C.thread(P2).addAction({Q1, S4, Q2, S5, EpsSym, "b2"});     // overwrite
  C.thread(P2).addAction({Q2, S5, Q3, S4, S6, "b3"});         // push
  C.setInitialStack(P2, {S4});

  if (auto R = C.freeze(); !R) {
    std::fprintf(stderr, "invalid system: %s\n", R.error().str().c_str());
    return 1;
  }
  std::printf("system: %u shared states, %u threads, initial %s\n",
              C.numSharedStates(), C.numThreads(),
              toString(C, C.initialState()).c_str());

  // A safety property is a set of bad visible states.  This one is
  // unreachable (P2's stack is never empty while the shared state is
  // 3), so CUBA can prove it.
  SafetyProperty Prop;
  VisiblePattern Bad;
  Bad.Q = Q3;
  Bad.Tops = {std::nullopt, EpsSym};
  Prop.addBadPattern(Bad);

  // Run the Sec. 6 procedure: FCR test, then the appropriate engine.
  DriverOptions Opts;
  Opts.Run.Limits.MaxContexts = 32;
  DriverResult R = runCuba(C, Prop, Opts);

  std::printf("FCR:    %s\n", R.Fcr.Holds ? "holds" : "not established");
  switch (R.Run.outcome()) {
  case Outcome::Proved:
    std::printf("result: safe for EVERY context bound; the visible-state\n"
                "        sequence T(R_k) collapsed at k0 = %u (the paper\n"
                "        derives exactly this bound in Ex. 14).\n",
                *R.Run.ConvergedAt);
    break;
  case Outcome::BugFound:
    std::printf("result: bug within %u contexts at %s\n", *R.Run.BugBound,
                R.Run.Witness.c_str());
    break;
  case Outcome::ResourceLimit:
    std::printf("result: undecided within the budget (k <= %u)\n",
                R.Run.KMax);
    break;
  }
  std::printf("cost:   %llu states, %.2f ms\n",
              static_cast<unsigned long long>(R.Run.StatesStored),
              R.Run.Millis);
  return R.Run.outcome() == Outcome::Proved ? 0 : 1;
}

//===-- core/CbaEngine.h - Explicit context-bounded engine -------*- C++ -*-=//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explicit-state computation of the sets R_k of global states reachable
/// within k contexts (Sec. 2.3), one context bound per round:
///
///   R_0     = { initial state }
///   R_{k+1} = union over s in R_k and threads i of closure_i(s),
///
/// where closure_i(s) is the set of states reachable from s by letting
/// thread i run alone (this is the union in the proof of Thm. 17; a
/// context is a maximal single-thread block, and closures include their
/// start state, so "at most k contexts" is preserved exactly).
///
/// Explicit storage is feasible exactly when the system satisfies finite
/// context reachability (Sec. 5); for other systems the per-context
/// closure can diverge, which the resource budget turns into an
/// "exhausted" result.
///
/// Frontier optimisation: only states first reached in round k are
/// expanded in round k+1; closures of older states were already expanded
/// in their discovery round (their closure is idempotent and monotone),
/// so R_k is computed exactly.  bench_ablation_frontier measures the
/// effect; setExpandAll(true) disables it.
///
//===----------------------------------------------------------------------===//

#ifndef CUBA_CORE_CBAENGINE_H
#define CUBA_CORE_CBAENGINE_H

#include <map>
#include <unordered_map>
#include <vector>

#include "pds/Cpds.h"
#include "support/Limits.h"

namespace cuba {

/// One step of a reconstructed counterexample: thread \p Thread fired
/// the action labelled \p Label, reaching \p State.
struct TraceStep {
  unsigned Thread = 0;
  std::string Label;
  GlobalState State;
};

/// Round-by-round explicit CBA exploration.
class CbaEngine {
public:
  enum class RoundStatus {
    Ok,        ///< The round completed; R_{k+1} is exact.
    Exhausted, ///< The resource budget ran out mid-round.
  };

  CbaEngine(const Cpds &C, const ResourceLimits &Limits);

  /// The bound k whose set R_k is currently complete.
  unsigned bound() const { return Bound; }

  /// Advances from R_k to R_{k+1}.
  RoundStatus advance();

  /// |R_k| for the current bound.
  size_t reachedSize() const { return Reached.size(); }

  /// |T(R_k)| for the current bound.
  size_t visibleSize() const { return VisibleSeen.size(); }

  /// The frontier R_k \ R_{k-1}: states first reached in the current
  /// round (the initial state for k = 0).
  const std::vector<GlobalState> &frontier() const { return Frontier; }

  /// Visible states first reached in the current round, sorted (the
  /// T(R_k) \ T(R_{k-1}) column of Fig. 1).
  std::vector<VisibleState> newVisibleThisRound() const;

  /// All reachable visible states so far with the round each was first
  /// seen in; iteration order is the VisibleState ordering.
  const std::map<VisibleState, unsigned> &visibleFirstSeen() const {
    return VisibleSeen;
  }

  /// True when \p V has been reached within the current bound.
  bool visibleReached(const VisibleState &V) const {
    return VisibleSeen.count(V) != 0;
  }

  /// True when \p S has been reached within the current bound.
  bool stateReached(const GlobalState &S) const {
    return Reached.count(S) != 0;
  }

  /// When true, every known state is re-expanded each round instead of
  /// only the frontier (the ablation baseline; results are identical).
  void setExpandAll(bool B) { ExpandAll = B; }

  const LimitTracker &limits() const { return Limits; }

  /// Reconstructs a run from the initial state to the earliest-found
  /// state whose projection equals \p V: the initial state as step 0
  /// (with an empty label), then one step per fired action.  Empty when
  /// \p V was never reached.  First-discovery parent edges guarantee a
  /// run within the state's discovery bound.
  std::vector<TraceStep> traceToVisible(const VisibleState &V) const;

private:
  /// Discovery metadata per stored state: round, BFS parent and the
  /// (thread, action) edge that first reached it.
  struct StateInfo {
    uint32_t Id = 0;
    unsigned Round = 0;
    uint32_t Parent = UINT32_MAX; // Id of the predecessor state.
    unsigned Thread = 0;
    uint32_t ActionIdx = 0;
  };

  RoundStatus closeUnderThread(unsigned I,
                               const std::vector<GlobalState> &Seeds,
                               std::vector<GlobalState> &NewFrontier);

  /// Inserts \p S into R if new; records visibility; returns true if
  /// the budget allows continuing.
  bool addState(const GlobalState &S, unsigned Round, uint32_t Parent,
                unsigned Thread, uint32_t ActionIdx);

  const Cpds &C;
  LimitTracker Limits;
  unsigned Bound = 0;
  bool ExpandAll = false;

  /// R_k with discovery metadata (rounds drive the frontier pruning
  /// rule; parent edges drive trace reconstruction).
  std::unordered_map<GlobalState, StateInfo, GlobalStateHash> Reached;
  /// Id -> map entry, for walking parent chains (map pointers are
  /// stable under rehashing).
  std::vector<const GlobalState *> StateById;
  std::vector<GlobalState> Frontier;
  /// T(R_k) with first-seen rounds; ordered for deterministic output.
  std::map<VisibleState, unsigned> VisibleSeen;
};

} // namespace cuba

#endif // CUBA_CORE_CBAENGINE_H

//===-- psa/PAutomaton.h - Pushdown store automata ---------------*- C++ -*-=//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pushdown store automata (PSA, App. C): finite automata whose first
/// NumShared states are identified with the PDS's shared states.  A PSA
/// accepts the PDS state <q | w> iff reading w (top-first) from automaton
/// state q reaches an accepting state; epsilon edges may be traversed
/// freely.  The (possibly infinite) reachable-state sets R(S) of a PDS
/// are regular and are represented by PSAs.
///
//===----------------------------------------------------------------------===//

#ifndef CUBA_PSA_PAUTOMATON_H
#define CUBA_PSA_PAUTOMATON_H

#include <vector>

#include "fa/Nfa.h"
#include "pds/State.h"

namespace cuba {

/// A pushdown store automaton.  States [0, NumShared) of the underlying
/// NFA are the PDS shared states; further states are internal.  Initial
/// flags of the NFA are not used for acceptance (membership starts at the
/// queried shared state); they are set on demand for whole-language
/// queries such as finiteness.
class PAutomaton {
public:
  PAutomaton(uint32_t NumShared, uint32_t NumSymbols)
      : NumShared(NumShared), A(NumSymbols) {
    A.reserveStates(NumShared);
    for (uint32_t I = 0; I < NumShared; ++I)
      A.addState();
  }

  uint32_t numShared() const { return NumShared; }
  Nfa &nfa() { return A; }
  const Nfa &nfa() const { return A; }

  /// Adds an internal (non-shared) state.
  uint32_t addState() { return A.addState(); }

  void addEdge(uint32_t From, Sym Label, uint32_t To) {
    A.addEdge(From, Label, To);
  }

  void setAccepting(uint32_t S) { A.setAccepting(S); }

  /// True when this PSA accepts the PDS state <q | w>; \p W is given
  /// top-first (reading order).
  bool accepts(QState Q, const std::vector<Sym> &W) const;

  /// The set {T(w) : (q, w) in L(A)} of top-of-stack symbols reachable
  /// from shared state \p Q, including EpsSym when the empty stack is
  /// accepted.  This is Alg. 4 of the paper, made precise for epsilon
  /// edges: the top of a non-empty word is the first non-epsilon label on
  /// an accepting path, and epsilon is in the set iff an accepting state
  /// is reachable via epsilon edges alone.  The result is sorted.
  std::vector<Sym> topSymbols(QState Q) const;

  /// Like topSymbols, but \p TreatAsEps (e.g. a bottom-of-stack marker)
  /// is reported as EpsSym: a stack holding only the marker represents
  /// the empty stack of the original, untransformed PDS.
  std::vector<Sym> topSymbols(QState Q, Sym TreatAsEps) const;

  /// A copy of the underlying NFA with exactly the shared states in
  /// \p Roots marked initial; used for whole-language queries (emptiness,
  /// finiteness, enumeration).
  Nfa rootedNfa(const std::vector<QState> &Roots) const;

private:
  uint32_t NumShared;
  Nfa A;
};

} // namespace cuba

#endif // CUBA_PSA_PAUTOMATON_H

//===-- support/Statistic.cpp - Named analysis counters ------------------===//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//

#include "support/Statistic.h"

#include <deque>
#include <unordered_map>

using namespace cuba;

namespace {

/// Backing store: a deque keeps counter addresses stable as new counters
/// register, and an index finds counters by name.
struct Registry {
  std::deque<std::pair<std::string, uint64_t>> Counters;
  std::unordered_map<std::string, uint64_t *> Index;
};

} // namespace

static Registry &registry() {
  static Registry R;
  return R;
}

uint64_t &Statistics::counter(const std::string &Name) {
  Registry &R = registry();
  auto It = R.Index.find(Name);
  if (It != R.Index.end())
    return *It->second;
  R.Counters.emplace_back(Name, 0);
  uint64_t *Slot = &R.Counters.back().second;
  R.Index.emplace(Name, Slot);
  return *Slot;
}

std::vector<std::pair<std::string, uint64_t>> Statistics::snapshot() {
  Registry &R = registry();
  return std::vector<std::pair<std::string, uint64_t>>(R.Counters.begin(),
                                                       R.Counters.end());
}

void Statistics::resetAll() {
  for (auto &Entry : registry().Counters)
    Entry.second = 0;
}

//===-- dataflow/TaintDomain.cpp - GEN/KILL taint weight domain -----------===//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//

#include "dataflow/TaintDomain.h"

#include <algorithm>
#include <cassert>

using namespace cuba;

TaintWeightTable::TaintWeightTable() {
  // Pin TfId 0 = identity and SetId 0 = { identity } = one.
  internTf(TaintTf{});
  internSet({0});
}

uint32_t TaintWeightTable::internTf(TaintTf T) {
  T.Kill &= ~T.Gen; // Canonical form: Gen wins, masks disjoint.
  uint64_t Key = (static_cast<uint64_t>(T.Kill) << 32) | T.Gen;
  auto [Slot, New] =
      TfIndex.tryEmplace(Key, static_cast<uint32_t>(Tfs.size()));
  if (New) {
    Tfs.push_back(T);
    Bytes += sizeof(TaintTf) + 2 * sizeof(uint64_t); // value + index slot
  }
  return *Slot;
}

uint32_t TaintWeightTable::internSet(std::vector<uint32_t> Members) {
  assert(!Members.empty() && "the empty set is the EmptySet sentinel");
  assert(std::is_sorted(Members.begin(), Members.end()) &&
         std::adjacent_find(Members.begin(), Members.end()) ==
             Members.end() &&
         "interned sets are sorted and duplicate-free");
  auto It = SetIndex.find(Members);
  if (It != SetIndex.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(Sets.size());
  Bytes += Members.size() * sizeof(uint32_t) + 8 * sizeof(uint64_t);
  Sets.push_back(Members);
  SetIndex.emplace(std::move(Members), Id);
  return Id;
}

uint32_t TaintWeightTable::memoised(
    FlatMap<uint64_t, uint32_t> &Cache, uint32_t A, uint32_t B,
    uint32_t (TaintWeightTable::*Op)(uint32_t, uint32_t)) {
  uint64_t Key = (static_cast<uint64_t>(A) << 32) | B;
  if (const uint32_t *Hit = Cache.find(Key))
    return *Hit;
  uint32_t R = (this->*Op)(A, B);
  // Op may have interned new sets and grown the cache's siblings, but
  // never this cache itself, so the slot lookup stays valid to redo.
  *Cache.tryEmplace(Key, R).first = R;
  Bytes += 2 * sizeof(uint64_t);
  return R;
}

uint32_t TaintWeightTable::unionSets(uint32_t A, uint32_t B) {
  if (A == B)
    return A;
  if (A > B)
    std::swap(A, B); // Union is commutative; normalise the cache key.
  return memoised(UnionCache, A, B, &TaintWeightTable::unionSetsImpl);
}

uint32_t TaintWeightTable::unionSetsImpl(uint32_t A, uint32_t B) {
  std::vector<uint32_t> Out;
  Out.reserve(Sets[A].size() + Sets[B].size());
  std::set_union(Sets[A].begin(), Sets[A].end(), Sets[B].begin(),
                 Sets[B].end(), std::back_inserter(Out));
  return internSet(std::move(Out));
}

uint32_t TaintWeightTable::composeSets(uint32_t A, uint32_t B) {
  // One is the extend identity on either side.
  if (A == 0)
    return B;
  if (B == 0)
    return A;
  return memoised(ComposeCache, A, B, &TaintWeightTable::composeSetsImpl);
}

uint32_t TaintWeightTable::composeSetsImpl(uint32_t A, uint32_t B) {
  std::vector<uint32_t> Out;
  Out.reserve(Sets[A].size() * Sets[B].size());
  for (uint32_t F : Sets[A])
    for (uint32_t G : Sets[B])
      Out.push_back(internTf(seqTf(Tfs[F], Tfs[G])));
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return internSet(std::move(Out));
}

uint32_t TaintWeightTable::diffSets(uint32_t A, uint32_t B) {
  if (A == B)
    return EmptySet;
  return memoised(DiffCache, A, B, &TaintWeightTable::diffSetsImpl);
}

uint32_t TaintWeightTable::diffSetsImpl(uint32_t A, uint32_t B) {
  std::vector<uint32_t> Out;
  Out.reserve(Sets[A].size());
  std::set_difference(Sets[A].begin(), Sets[A].end(), Sets[B].begin(),
                      Sets[B].end(), std::back_inserter(Out));
  if (Out.empty())
    return EmptySet;
  if (Out.size() == Sets[A].size())
    return A;
  return internSet(std::move(Out));
}

uint32_t TaintWeightTable::composeSetWithTf(uint32_t A, uint32_t T) {
  if (T == 0)
    return A;
  return memoised(ComposeTfCache, A, T,
                  &TaintWeightTable::composeSetWithTfImpl);
}

uint32_t TaintWeightTable::composeSetWithTfImpl(uint32_t A, uint32_t T) {
  std::vector<uint32_t> Out;
  Out.reserve(Sets[A].size());
  TaintTf W = Tfs[T];
  for (uint32_t F : Sets[A])
    Out.push_back(internTf(seqTf(Tfs[F], W)));
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return internSet(std::move(Out));
}

uint32_t TaintWeightTable::applySetMay(uint32_t A, uint32_t Facts) const {
  uint32_t Out = 0;
  for (uint32_t F : Sets[A])
    Out |= applyTf(Tfs[F], Facts);
  return Out;
}

//===----------------------------------------------------------------------===//
// TaintDomain rows
//===----------------------------------------------------------------------===//

uint32_t TaintDomain::findRoot(const Row &R, QState Root) {
  auto It = std::lower_bound(
      R.begin(), R.end(), Root,
      [](const Entry &E, QState Q) { return E.Root < Q; });
  if (It != R.end() && It->Root == Root)
    return It->Set;
  return EmptyMark;
}

bool TaintDomain::accumulate(uint32_t T, const Row &Delta) {
  Row &A = Active[T];
  Row &P = Pending[T];
  bool Fresh = false;
  Row NP;
  NP.reserve(P.size() + Delta.size());
  size_t IA = 0, IP = 0;
  for (const Entry &E : Delta) {
    while (IP < P.size() && P[IP].Root < E.Root)
      NP.push_back(P[IP++]);
    while (IA < A.size() && A[IA].Root < E.Root)
      ++IA;
    // New information at this root: the delta minus what is already
    // active, minus what is already pending.
    uint32_t N = E.Set;
    if (IA < A.size() && A[IA].Root == E.Root)
      N = Tab.diffSets(N, A[IA].Set);
    uint32_t Cur = EmptyMark;
    if (IP < P.size() && P[IP].Root == E.Root)
      Cur = P[IP].Set;
    if (N != EmptyMark && Cur != EmptyMark)
      N = Tab.diffSets(N, Cur);
    if (N == EmptyMark) {
      if (Cur != EmptyMark)
        NP.push_back(P[IP++]);
      continue;
    }
    Fresh = true;
    if (Cur != EmptyMark) {
      NP.push_back({E.Root, Tab.unionSets(Cur, N)});
      ++IP;
    } else {
      NP.push_back({E.Root, N});
    }
  }
  while (IP < P.size())
    NP.push_back(P[IP++]);
  if (Fresh) {
    PendingEntries += NP.size() - P.size();
    P = std::move(NP);
  }
  return Fresh;
}

void TaintDomain::take(uint32_t T, Row &CurDelta) {
  CurDelta = std::move(Pending[T]);
  Pending[T].clear();
  PendingEntries -= CurDelta.size();
  Row &A = Active[T];
  Row NA;
  NA.reserve(A.size() + CurDelta.size());
  size_t IA = 0;
  for (const Entry &E : CurDelta) {
    while (IA < A.size() && A[IA].Root < E.Root)
      NA.push_back(A[IA++]);
    if (IA < A.size() && A[IA].Root == E.Root) {
      NA.push_back({E.Root, Tab.unionSets(A[IA].Set, E.Set)});
      ++IA;
    } else {
      NA.push_back(E);
    }
  }
  while (IA < A.size())
    NA.push_back(A[IA++]);
  ActiveEntries += NA.size() - A.size();
  A = std::move(NA);
}

bool TaintDomain::composeRows(const Row &First, const Row &Second, Row &Out) {
  Out.clear();
  size_t I = 0, J = 0;
  while (I < First.size() && J < Second.size()) {
    if (First[I].Root < Second[J].Root) {
      ++I;
    } else if (Second[J].Root < First[I].Root) {
      ++J;
    } else {
      Out.push_back(
          {First[I].Root, Tab.composeSets(First[I].Set, Second[J].Set)});
      ++I;
      ++J;
    }
  }
  return !Out.empty();
}

//===-- examples/observation_sequences.cpp - The Sec. 3 paradigm -----------=//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates the observation-sequence paradigm on the Fig. 1 example:
/// prints the per-bound growth of (R_k) and (T(R_k)), shows the k = 2..3
/// stutter plateau that a naive convergence test would mistake for
/// collapse, and how the generator test (G cap Z) tells them apart.
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "core/CbaEngine.h"
#include "core/Generators.h"
#include "core/ZOverapprox.h"
#include "models/Models.h"
#include "pds/CpdsIO.h"

using namespace cuba;

int main() {
  CpdsFile F = models::buildFig1();
  const Cpds &C = F.System;

  // The static ingredients of Alg. 3: the overapproximation Z (Alg. 2)
  // and the generators among it (Eq. 2).
  GeneratorSet G(C);
  std::vector<VisibleState> Z = computeZ(C);
  std::vector<VisibleState> GZ = G.intersect(Z);
  std::printf("Z (Alg. 2 overapproximation), %zu states:\n", Z.size());
  for (const VisibleState &V : Z)
    std::printf("  %s%s\n", toString(C, V).c_str(),
                G.contains(V) ? "   <- generator" : "");
  std::printf("G cap Z has %zu element(s): every one must be reached "
              "before a plateau counts as convergence.\n\n",
              GZ.size());

  // Replay the observation sequences round by round (Fig. 1, right).
  CbaEngine E(C, ResourceLimits::unlimited());
  std::printf(" k | |R_k| |T(R_k)| new visible states\n");
  std::printf("---+------+--------+-------------------\n");
  for (unsigned K = 0; K <= 7; ++K) {
    if (K > 0 && E.advance() != CbaEngine::RoundStatus::Ok) {
      std::printf("resource budget exhausted\n");
      return 1;
    }
    std::printf("%2u | %4zu | %6zu | ", K, E.reachedSize(),
                E.visibleSize());
    auto New = E.newVisibleThisRound();
    if (New.empty())
      std::printf("(plateau)");
    for (const VisibleState &V : New)
      std::printf("%s ", toString(C, V).c_str());
    // Evaluate the generator test at this bound.
    size_t Missing = 0;
    for (const VisibleState &V : GZ)
      if (!E.visibleReached(V))
        ++Missing;
    if (New.empty())
      std::printf("  [generator test: %s]",
                  Missing == 0 ? "PASS -> converged"
                               : "FAIL -> keep going");
    std::printf("\n");
  }
  std::printf(
      "\nReading the table: (R_k) grows forever (the stacks pump), so\n"
      "Scheme 1 never terminates here.  (T(R_k)) plateaus at k = 2-3,\n"
      "but the generator <0 | 1, 6> was still unreached -- stuttering,\n"
      "not convergence.  At the k = 5-6 plateau every reachable\n"
      "generator is covered, so T(R) = T(R_5): CUBA concludes for all\n"
      "context bounds, matching Ex. 14 of the paper.\n");
  return 0;
}

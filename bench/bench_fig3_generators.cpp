//===-- bench/bench_fig3_generators.cpp - Regenerates Fig. 3 / Ex. 14 ------=//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E2: the static ingredients of Alg. 3 on the running
/// example -- the finite abstraction's reachable set Z (Ex. 13 /
/// Fig. 3), the generator set G (Ex. 14), their intersection, and the
/// resulting Alg. 3 trace with the k=2 plateau rejected and the k=5
/// plateau accepted.
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "BenchUtil.h"
#include "core/Algorithms.h"
#include "core/CbaEngine.h"
#include "core/Generators.h"
#include "core/ZOverapprox.h"
#include "models/Models.h"
#include "pds/CpdsIO.h"

using namespace cuba;
using namespace cuba::benchutil;

int main() {
  CpdsFile F = models::buildFig1();
  const Cpds &C = F.System;

  std::printf("[E2] Z, G and the Alg. 3 trace on the Fig. 1 example\n");
  rule('=');

  std::vector<VisibleState> Z = computeZ(C);
  std::printf("Z (reachable states of the Alg. 2 abstraction M_2), "
              "%zu states\n  (paper, Ex. 13: 8 states):\n",
              Z.size());
  for (const VisibleState &V : Z)
    std::printf("  %s\n", toString(C, V).c_str());

  GeneratorSet G(C);
  std::vector<VisibleState> GZ = G.intersect(Z);
  std::printf("\nG cap Z (paper, Ex. 14: {<0|1,eps>, <0|1,6>}):\n");
  for (const VisibleState &V : GZ)
    std::printf("  %s\n", toString(C, V).c_str());

  // The Ex. 14 membership facts for the full (unrestricted) G.
  std::printf("\nEq. (2) membership spot checks (paper's G = {<0|1,eps>, "
              "<0|1,6>, <0|2,eps>, <0|2,6>}):\n");
  auto Check = [&](QState Q, const char *T1, const char *T2, bool Want) {
    VisibleState V;
    V.Q = Q;
    V.Tops = {C.thread(0).symbolByName(T1),
              std::string_view(T2) == "eps" ? EpsSym
                                            : C.thread(1).symbolByName(T2)};
    bool Got = G.contains(V);
    std::printf("  %s in G: %s (expected %s)\n", toString(C, V).c_str(),
                Got ? "yes" : "no", Want ? "yes" : "no");
  };
  Check(0, "1", "eps", true);
  Check(0, "1", "6", true);
  Check(0, "2", "eps", true);
  Check(0, "2", "6", true);
  Check(0, "1", "4", false);
  Check(3, "2", "4", false);

  // The Alg. 3 trace.
  std::printf("\nAlg. 3 trace:\n");
  CbaEngine E(C, ResourceLimits::unlimited());
  std::vector<VisibleState> Pending = GZ;
  size_t PrevSize = E.visibleSize(), PrevPrevSize = 0;
  for (unsigned K = 1; K <= 8; ++K) {
    E.advance();
    size_t Size = E.visibleSize();
    bool NewPlateau = Size == PrevSize && (K == 1 || PrevPrevSize < PrevSize);
    if (NewPlateau) {
      std::erase_if(Pending, [&](const VisibleState &V) {
        return E.visibleReached(V);
      });
      std::printf("  k=%u: plateau |T|=%zu; unreached generators: %zu", K,
                  Size, Pending.size());
      for (const VisibleState &V : Pending)
        std::printf(" %s", toString(C, V).c_str());
      if (Pending.empty()) {
        std::printf("  -> CONVERGED, T(R) = T(R_%u)\n", K - 1);
        break;
      }
      std::printf("  -> stuttering, continue\n");
    } else {
      std::printf("  k=%u: |T|=%zu\n", K, Size);
    }
    PrevPrevSize = PrevSize;
    PrevSize = Size;
  }
  std::printf("(paper: plateau at k=2 rejected because <0|1,6> was "
              "unreached; collapse detected at k0=5)\n");
  return 0;
}

//===-- bench/bench_bp_pipeline.cpp - Boolean-program pipeline bench -------=//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark timings for the Boolean-program frontend pipeline,
/// staged over the committed examples/corpus models: parse (lex +
/// AST), compile (parse + sema + translate to CPDS), and verdict (the
/// full Sec. 6 driver on the translation).  A fourth counter-style
/// benchmark measures one whole `cuba fuzz --mode bp` iteration, so the
/// JSON tracks fuzz throughput per commit.  Emits BENCH_bp.json via
/// --benchmark_format=json; see BUILDING.md.
///
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "BenchUtil.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bp/Parser.h"
#include "bp/Translate.h"
#include "core/CubaDriver.h"
#include "testing/BpOracle.h"
#include "testing/RandomBp.h"

using namespace cuba;

namespace {

struct CorpusModel {
  std::string Name;
  std::string Source;
};

std::vector<CorpusModel> loadCorpus() {
  std::vector<CorpusModel> Models;
  for (const auto &Entry :
       std::filesystem::directory_iterator(CUBA_CORPUS_DIR)) {
    if (Entry.path().extension() != ".bp")
      continue;
    std::ifstream In(Entry.path());
    std::stringstream SS;
    SS << In.rdbuf();
    Models.push_back({Entry.path().stem().string(), SS.str()});
  }
  std::sort(Models.begin(), Models.end(),
            [](const CorpusModel &A, const CorpusModel &B) {
              return A.Name < B.Name;
            });
  return Models;
}

/// The verdict budget of the corpus golden tests (state/step bounded,
/// no wall clock), so bench and test run the same workload.
DriverOptions verdictOptions() {
  DriverOptions O;
  O.Run.Limits = ResourceLimits{500'000, 50'000'000, 24, 0};
  return O;
}

void BM_BpParse(benchmark::State &State, const CorpusModel &M) {
  for (auto _ : State) {
    auto P = bp::parseProgram(M.Source);
    benchmark::DoNotOptimize(P);
  }
}

void BM_BpCompile(benchmark::State &State, const CorpusModel &M) {
  for (auto _ : State) {
    auto F = bp::compileBooleanProgram(M.Source);
    benchmark::DoNotOptimize(F);
  }
}

void BM_BpVerdict(benchmark::State &State, const CorpusModel &M) {
  auto F = bp::compileBooleanProgram(M.Source);
  if (!F) {
    State.SkipWithError("corpus model does not compile");
    return;
  }
  DriverOptions O = verdictOptions();
  for (auto _ : State) {
    DriverResult R = runCuba(F->System, F->Property, O);
    benchmark::DoNotOptimize(R.Run.VisibleStates);
  }
}

/// One full fuzz iteration: generate a random program, then run the
/// whole cross-representation oracle on it (print/parse fixpoint, dual
/// compile, .cpds round-trip, engine battery).  Seeds advance per
/// iteration so the numbers average over program shapes, same as a real
/// `cuba fuzz --mode bp` run.
void BM_BpFuzzIteration(benchmark::State &State) {
  using namespace cuba::testing;
  BpOracleOptions Opts;
  Opts.Engine.MaxK = 4;
  Opts.Engine.Limits = ResourceLimits{10'000, 1'000'000, 8, 0};
  uint64_t Seed = 1;
  for (auto _ : State) {
    BpOracleReport R = checkBpSeed(Seed, Opts);
    benchmark::DoNotOptimize(R.ok());
    ++Seed;
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));
}
BENCHMARK(BM_BpFuzzIteration);

} // namespace

int main(int argc, char **argv) {
  std::vector<CorpusModel> Corpus = loadCorpus();
  for (const CorpusModel &M : Corpus) {
    benchmark::RegisterBenchmark(
        ("BM_BpParse/" + M.Name).c_str(),
        [M](benchmark::State &S) { BM_BpParse(S, M); });
    benchmark::RegisterBenchmark(
        ("BM_BpCompile/" + M.Name).c_str(),
        [M](benchmark::State &S) { BM_BpCompile(S, M); });
    benchmark::RegisterBenchmark(
        ("BM_BpVerdict/" + M.Name).c_str(),
        [M](benchmark::State &S) { BM_BpVerdict(S, M); });
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  cuba::benchutil::addRunContext();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

//===-- pds/Pds.cpp - Sequential pushdown systems -------------------------===//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//

#include "pds/Pds.h"

#include <algorithm>

using namespace cuba;

Sym Pds::addSymbol(std::string Name) {
  assert(!Frozen && "cannot add symbols after freeze()");
  SymNames.push_back(std::move(Name));
  return static_cast<Sym>(SymNames.size() - 1);
}

Sym Pds::symbolByName(std::string_view Name) const {
  for (size_t I = 1; I < SymNames.size(); ++I)
    if (SymNames[I] == Name)
      return static_cast<Sym>(I);
  return EpsSym;
}

uint32_t Pds::addAction(Action A) {
  assert(!Frozen && "cannot add actions after freeze()");
  Delta.push_back(std::move(A));
  return static_cast<uint32_t>(Delta.size() - 1);
}

/// Returns true when \p S names a symbol of this alphabet or epsilon.
static bool symbolInRange(Sym S, uint32_t NumSymbols) {
  return S <= NumSymbols;
}

ErrorOr<void> Pds::freeze(uint32_t NumSharedStates) {
  assert(!Frozen && "freeze() called twice");
  uint32_t NumSyms = numSymbols();
  for (const Action &A : Delta) {
    if (A.SrcQ >= NumSharedStates || A.DstQ >= NumSharedStates)
      return Error("action '" + A.Label + "': shared state out of range");
    if (!symbolInRange(A.SrcSym, NumSyms) || !symbolInRange(A.Dst0, NumSyms) ||
        !symbolInRange(A.Dst1, NumSyms))
      return Error("action '" + A.Label + "': stack symbol out of range");
    // Target words are written left-packed: (Dst0, Dst1) may not be
    // (eps, s), which would encode a word with a hole in it.
    if (A.Dst0 == EpsSym && A.Dst1 != EpsSym)
      return Error("action '" + A.Label + "': malformed target word");
    // Case (b) of the semantics: actions from the empty stack may write at
    // most one symbol.
    if (A.SrcSym == EpsSym && A.targetLength() > 1)
      return Error("action '" + A.Label +
                   "': empty-stack action must write at most one symbol");
  }

  // Two passes: count per-source fan-out first, so every bucket is
  // allocated exactly once at its final size.
  BySource.assign(static_cast<size_t>(NumSharedStates) * (NumSyms + 1), {});
  std::vector<uint32_t> Fanout(BySource.size(), 0);
  auto SourceKey = [NumSyms](const Action &A) {
    return static_cast<size_t>(A.SrcQ) * (NumSyms + 1) + A.SrcSym;
  };
  for (const Action &A : Delta)
    ++Fanout[SourceKey(A)];
  for (size_t Key = 0; Key < BySource.size(); ++Key)
    BySource[Key].reserve(Fanout[Key]);
  for (uint32_t I = 0; I < Delta.size(); ++I)
    BySource[SourceKey(Delta[I])].push_back(I);

  // Build-then-query sorted vectors for the syntactic sets used by the
  // generator test (Eq. 2) and the Z overapproximation (Alg. 2).
  for (const Action &A : Delta) {
    if (A.kind() == ActionKind::Push)
      Emerging.push_back(A.Dst1);
    if (A.kind() == ActionKind::Pop)
      PopTargets.push_back(A.DstQ);
  }
  std::sort(Emerging.begin(), Emerging.end());
  Emerging.erase(std::unique(Emerging.begin(), Emerging.end()),
                 Emerging.end());
  std::sort(PopTargets.begin(), PopTargets.end());
  PopTargets.erase(std::unique(PopTargets.begin(), PopTargets.end()),
                   PopTargets.end());

  Frozen = true;
  return {};
}

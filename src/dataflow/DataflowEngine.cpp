//===-- dataflow/DataflowEngine.cpp - Weighted dataflow client ------------===//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//

#include "dataflow/DataflowEngine.h"

#include <algorithm>
#include <chrono>
#include <tuple>

#include "fa/Canonicalize.h"
#include "obs/Trace.h"
#include "support/FaultInject.h"
#include "support/Statistic.h"

using namespace cuba;
using namespace cuba::bp;

/// Builds the canonical DFA accepting exactly the single word \p Word.
static CanonicalDfa singleWordLanguage(uint32_t NumSymbols,
                                       const std::vector<Sym> &Word) {
  Nfa A(NumSymbols);
  uint32_t Cur = A.addState();
  A.setInitial(Cur);
  for (Sym S : Word) {
    uint32_t Next = A.addState();
    A.addEdge(Cur, S, Next);
    Cur = Next;
  }
  A.setAccepting(Cur);
  return canonicalizeNfa(A);
}

/// The (root, facts) transaction-record key.
static uint64_t recordKey(QState Q, uint32_t Facts) {
  return (static_cast<uint64_t>(Q) << 32) | Facts;
}

DataflowEngine::DataflowEngine(const Cpds &C, const TaintInfo &Taint,
                               const ResourceLimits &RL)
    : C(C), Taint(Taint), Limits(RL), TopsCache(C.numThreads()),
      SatCache(C.numThreads()) {
  assert(C.frozen() && "DataflowEngine requires a frozen CPDS");
  SharedBits = Taint.SharedBits;
  BaseErr = static_cast<QState>(1) << SharedBits;
  assert(C.numSharedStates() == BaseErr + 1 &&
         "the side table must come from the same (base) translation");
  FoldErr = static_cast<QState>(1) << (SharedBits + Taint.FactNames.size());

  for (unsigned I = 0; I < C.numThreads(); ++I)
    Bottomed.push_back(
        eliminateEmptyStackRules(C.thread(I), C.numSharedStates()));

  // Per-action rule weights over the transformed deltas: the bottom
  // transform copies the original actions in order (and taint rules are
  // overwrite-shaped, never empty-stack), so the frontend's indices are
  // valid as-is; appended rules default to identity.
  RuleTf.resize(C.numThreads());
  for (unsigned I = 0; I < C.numThreads(); ++I)
    RuleTf[I].assign(Bottomed[I].P.actions().size(), TaintTf{});
  for (const TaintActionWeight &W : Taint.Weights) {
    assert(W.Thread < RuleTf.size() &&
           W.Action < RuleTf[W.Thread].size() && "stale taint side table");
    RuleTf[W.Thread][W.Action] = {W.Kill, W.Gen};
  }

  // The initial state <q0, no facts | lifted initial stacks>.
  GlobalState Init = C.initialState();
  DataflowState S;
  S.Q = Init.Q;
  S.Facts = 0;
  for (unsigned I = 0; I < C.numThreads(); ++I) {
    // Stacks are stored bottom-first; automata read top-first.
    std::vector<Sym> Word(Init.Stacks[I].rbegin(), Init.Stacks[I].rend());
    Word.push_back(Bottomed[I].Bottom);
    S.Langs.push_back(
        Store.intern(singleWordLanguage(Bottomed[I].P.numSymbols(), Word)));
  }
  addState(std::move(S), 0, UINT32_MAX, &Frontier);
}

const std::vector<Sym> &DataflowEngine::topsOf(unsigned Thread, DfaId Lang) {
  TopsCacheEntry &Cache = TopsCache[Thread];
  if (Cache.Filled.size() < Store.size()) {
    Cache.Filled.resize(Store.size(), 0);
    Cache.Tops.resize(Store.size());
  }
  if (Cache.Filled[Lang])
    return Cache.Tops[Lang];

  // Every edge leaving the canonical start lies on an accepting path;
  // the bottom marker on top encodes the empty original stack.
  const CanonicalDfa &D = Store.get(Lang);
  std::vector<Sym> Tops;
  Sym Bottom = Bottomed[Thread].Bottom;
  if (D.Start != CanonicalDfa::NoState) {
    if (D.Accepting[D.Start])
      Tops.push_back(EpsSym);
    for (Sym X = 1; X <= D.NumSymbols; ++X) {
      if (D.Table[static_cast<size_t>(D.Start) * D.NumSymbols + (X - 1)] ==
          CanonicalDfa::NoState)
        continue;
      Tops.push_back(X == Bottom ? EpsSym : X);
    }
  }
  std::sort(Tops.begin(), Tops.end());
  Tops.erase(std::unique(Tops.begin(), Tops.end()), Tops.end());
  Cache.Filled[Lang] = 1;
  Cache.Tops[Lang] = std::move(Tops);
  return Cache.Tops[Lang];
}

void DataflowEngine::recordVisible(const DataflowState &S, unsigned Round) {
  unsigned N = C.numThreads();
  VisibleState V;
  V.Q = foldQ(S.Q, S.Facts);
  V.Tops.assign(N, EpsSym);
  // Iterative odometer over the per-thread top sets.
  std::vector<const std::vector<Sym> *> Sets;
  Sets.reserve(N);
  for (unsigned I = 0; I < N; ++I) {
    Sets.push_back(&topsOf(I, S.Langs[I]));
    if (Sets.back()->empty())
      return;
  }
  std::vector<size_t> Idx(N, 0);
  while (true) {
    for (unsigned I = 0; I < N; ++I)
      V.Tops[I] = (*Sets[I])[Idx[I]];
    FirstSeen.emplace(V, Round); // Keeps the earliest round.
    unsigned I = 0;
    while (I < N && ++Idx[I] == Sets[I]->size()) {
      Idx[I] = 0;
      ++I;
    }
    if (I == N)
      break;
  }
}

std::pair<bool, bool>
DataflowEngine::addState(DataflowState S, unsigned Round, uint32_t Producer,
                         std::vector<DataflowState> *NewFrontier) {
  static Statistic StateCounter("dataflow.states");
  uint32_t Mask = Producer == UINT32_MAX ? 0u : (1u << Producer);
  auto [Slot, New] = States.tryEmplace(S, Mask);
  if (!New) {
    *Slot |= Mask;
    return {false, true};
  }
  ++StateCounter;
  recordVisible(S, Round);
  if (NewFrontier)
    NewFrontier->push_back(std::move(S));
  if (!Limits.chargeState())
    return {true, false};
  return {true, Limits.checkMemory(memoryUsage())};
}

bool DataflowEngine::addSuccessor(const DataflowState &S, unsigned I,
                                  QState Q2, uint32_t FactsOut, DfaId Lang,
                                  std::vector<DataflowState> &NewFrontier) {
  DataflowState Succ;
  Succ.Q = Q2;
  Succ.Facts = FactsOut;
  Succ.Langs = S.Langs;
  Succ.Langs[I] = Lang;
  return addState(std::move(Succ), Bound + 1, I, &NewFrontier).second;
}

bool DataflowEngine::replayTransaction(const Transaction &TR,
                                       const DataflowState &S, unsigned I,
                                       std::vector<DataflowState> &NewFrontier) {
  if (!Limits.chargeStep(TR.BaseSteps))
    return false;
  for (const Transaction::Succ &Succ : TR.Succs) {
    if (!Limits.chargeStep(Succ.StepCost))
      return false;
    if (!addSuccessor(S, I, Succ.Q2, Succ.FactsOut, Succ.Lang, NewFrontier))
      return false;
  }
  return true;
}

uint32_t DataflowEngine::saturate(unsigned I, DfaId Lang) {
  if (const uint32_t *Found = SatCache[I].find(Lang))
    return *Found;
  static Statistic SatCounter("dataflow.saturations");
  static obs::Histogram PopsPerSat("dataflow.pops_per_saturation");
  ++SatCounter;
  obs::ScopedSpan Span("saturate", obs::Trace::CatDet);
  Span.arg("thread", I);
  Span.arg("lang", Lang);

  // Fresh (thread, language): build the domain with this thread's rule
  // transformers interned, then run the generic saturator charged live.
  TaintWeightTable Tab;
  std::vector<uint32_t> TfBy(RuleTf[I].size(), 0);
  for (size_t AI = 0; AI < RuleTf[I].size(); ++AI)
    if (!(RuleTf[I][AI] == TaintTf{}))
      TfBy[AI] = Tab.internTf(RuleTf[I][AI]);

  uint64_t StepsBefore = Limits.steps();
  WeightedSaturatorT<TaintDomain> Sat(
      Bottomed[I].P, C.numSharedStates(), Store.get(Lang), &Limits,
      TaintDomain(std::move(Tab), std::move(TfBy)));
  WeightedResult<TaintDomain> R = Sat.run();
  PopsPerSat.observe(Limits.steps() - StepsBefore);
  Span.arg("pops", Limits.steps() - StepsBefore);
  if (!R.Complete)
    return UINT32_MAX;

  fault::checkAlloc();
  uint32_t Idx = static_cast<uint32_t>(Sats.size());
  Span.arg("bytes", R.Rel.memoryBytes());
  SatBytes += R.Rel.memoryBytes();
  WSat W;
  W.Rel = std::move(R.Rel);
  W.PendingBase = Limits.steps() - StepsBefore;
  Sats.push_back(std::move(W));
  SatCache[I].tryEmplace(Lang, Idx);
  Limits.checkMemory(memoryUsage());
  return Idx;
}

uint32_t DataflowEngine::rootProduct(uint32_t SatIdx, QState Root) {
  WSat &W = Sats[SatIdx];
  if (const uint32_t *Found = W.Roots.find(Root))
    return *Found;
  static Statistic ProductCounter("dataflow.products");
  ++ProductCounter;
  obs::ScopedSpan Span("product", obs::Trace::CatDet);
  Span.arg("root", Root);

  WeightedRelation<TaintDomain> &Rel = W.Rel;
  TaintWeightTable &Tab = Rel.Dom.table();

  // Adjacency restricted to the root's view, each edge carrying its
  // transformer set at this root.
  struct PEdge {
    Sym Label;
    uint32_t To;
    uint32_t Set;
  };
  std::vector<std::vector<PEdge>> Adj(Rel.NumStates);
  for (size_t T = 0; T < Rel.numTransitions(); ++T) {
    uint32_t Set = Rel.Dom.setAt(T, Root);
    if (Set != TaintWeightTable::EmptySet)
      Adj[Rel.TFrom[T]].push_back({Rel.TLabel[T], Rel.TTo[T], Set});
  }

  // BFS unfolding over (relation state, composed transformer).  Reading
  // edges top-first composes in reverse execution order (INV1): the
  // edge just read executes BEFORE the suffix already composed, so the
  // child's transformer is seq(f, g).
  RootProduct P;
  P.Prod = Nfa(Rel.NumSymbols);
  FlatMap<uint64_t, uint32_t> Index;
  std::vector<uint32_t> Queue;
  auto pstate = [&](uint32_t S, uint32_t G) {
    auto [Slot, New] =
        Index.tryEmplace((static_cast<uint64_t>(S) << 32) | G, 0);
    if (New) {
      *Slot = P.Prod.addState();
      P.PStates.emplace_back(S, G);
      Queue.push_back(*Slot);
    }
    return *Slot;
  };
  P.SeedId.resize(Rel.NumShared);
  for (QState Q2 = 0; Q2 < Rel.NumShared; ++Q2)
    P.SeedId[Q2] = pstate(Q2, 0);
  for (size_t Head = 0; Head < Queue.size(); ++Head) {
    uint32_t Pid = Queue[Head];
    auto [S, G] = P.PStates[Pid];
    TaintTf GT = Tab.tf(G);
    for (const PEdge &E : Adj[S]) {
      // set() stays valid across internTf (it only grows the Tf pool).
      for (uint32_t F : Tab.set(E.Set)) {
        uint32_t G2 = Tab.internTf(seqTf(Tab.tf(F), GT));
        P.Prod.addEdge(Pid, E.Label, pstate(E.To, G2));
      }
    }
  }

  // Acceptance in the root's view: the base accepting states, plus the
  // root itself when the input language accepts the empty word.  The
  // Nfa flags stay clear -- commitExtraction toggles them per output
  // fact-vector group.
  for (uint32_t Pid = 0; Pid < P.PStates.size(); ++Pid) {
    uint32_t S = P.PStates[Pid].first;
    bool Acc = S >= Rel.NumShared ? Rel.AcceptBase[S] != 0
                                  : (S == Root && Rel.StartAccepting);
    if (Acc)
      P.Accepts.push_back(Pid);
  }

  Span.arg("pstates", P.PStates.size());
  SatBytes += P.memoryBytes();
  uint32_t Idx = static_cast<uint32_t>(RootProducts.size());
  RootProducts.push_back(std::move(P));
  W.Roots.tryEmplace(Root, Idx);
  return Idx;
}

bool DataflowEngine::commitExtraction(uint32_t SatIdx, const DataflowState &S,
                                      unsigned I,
                                      std::vector<DataflowState> &NewFrontier) {
  static Statistic ExtractCounter("dataflow.extractions");
  static obs::Histogram Fanout("dataflow.extraction_fanout");
  ++ExtractCounter;
  obs::ScopedSpan Span("extract", obs::Trace::CatDet);
  Span.arg("thread", I);
  Span.arg("root", S.Q);
  uint32_t PIdx = rootProduct(SatIdx, S.Q);
  WSat &W = Sats[SatIdx];
  RootProduct &P = RootProducts[PIdx];
  TaintWeightTable &Tab = W.Rel.Dom.table();

  Transaction TR;
  TR.BaseSteps = W.PendingBase; // First extraction carries the base.
  W.PendingBase = 0;

  if (!Limits.checkMemory(memoryUsage()))
    return false;

  // Group the accepting product states by the fact vector they produce
  // from the incoming one; each group is one successor family
  // <q2, apply(g, facts)>.  Ordered map: deterministic successor order.
  std::map<uint32_t, std::vector<uint32_t>> Groups;
  for (uint32_t Pid : P.Accepts)
    Groups[applyTf(Tab.tf(P.PStates[Pid].second), S.Facts)].push_back(Pid);

  // Per-successor charge: the product automaton the canonicalization
  // reads, the weighted analogue of the boolean pipeline's rooted-NFA
  // cost.
  uint64_t Cost = P.PStates.size();
  bool Ok = true;
  std::vector<uint32_t> Target(1);
  for (auto &[FactsOut, Members] : Groups) {
    if (!Ok)
      break;
    for (uint32_t Pid : Members)
      P.Prod.setAccepting(Pid, true);
    for (QState Q2 = 0; Ok && Q2 < W.Rel.NumShared; ++Q2) {
      Target[0] = P.SeedId[Q2];
      CanonicalDfa D = canonicalizeNfa(P.Prod, Target);
      if (D.Start == CanonicalDfa::NoState)
        continue; // Empty language at this target: no successor.
      if (!Limits.chargeStep(Cost)) {
        Ok = false;
        break;
      }
      DfaId Lang = Store.intern(std::move(D));
      TR.Succs.push_back({Q2, FactsOut, Lang, Cost});
      if (!addSuccessor(S, I, Q2, FactsOut, Lang, NewFrontier))
        Ok = false;
    }
    for (uint32_t Pid : Members)
      P.Prod.setAccepting(Pid, false);
  }
  // Exhaustion mid-transaction leaves <root, facts> unrecorded: a
  // prefix was charged and registered, and the engine is stopping.
  if (!Ok)
    return false;
  Fanout.observe(TR.Succs.size());
  Span.arg("fanout", TR.Succs.size());
  Transactions.push_back(std::move(TR));
  W.Records.tryEmplace(recordKey(S.Q, S.Facts),
                       static_cast<uint32_t>(Transactions.size() - 1));
  return true;
}

bool DataflowEngine::expand(const DataflowState &S, unsigned I,
                            std::vector<DataflowState> &NewFrontier) {
  static Statistic TransCounter("dataflow.transactions");
  static Statistic HitCounter("dataflow.transactions.cached");
  ++TransCounter;

  DfaId Lang = S.Langs[I];
  if (Store.get(Lang).Start == CanonicalDfa::NoState)
    return true;

  uint32_t SatIdx = saturate(I, Lang);
  if (SatIdx == UINT32_MAX)
    return false;
  if (const uint32_t *Rec =
          Sats[SatIdx].Records.find(recordKey(S.Q, S.Facts))) {
    ++HitCounter;
    return replayTransaction(Transactions[*Rec], S, I, NewFrontier);
  }
  return commitExtraction(SatIdx, S, I, NewFrontier);
}

DataflowEngine::RoundStatus DataflowEngine::advance() {
  static Statistic Rounds("dataflow.rounds");
  static obs::Histogram RoundMicros("dataflow.round_micros",
                                    /*Deterministic=*/false);
  static obs::Gauge BytesHwm("dataflow.bytes.hwm");
  ++Rounds;
  auto T0 = std::chrono::steady_clock::now();
  // The engine is serial, so the span content is trivially
  // jobs-independent; it still carries the det category so dataflow
  // traces diff clean alongside the boolean engines'.
  obs::ScopedSpan Round("dataflow-round", obs::Trace::CatDet);
  Round.arg("k", Bound);
  Round.arg("frontier", Frontier.size());
  auto Finish = [&](size_t NewStates) {
    Round.arg("new_states", NewStates);
    Round.arg("steps", Limits.steps());
    Round.arg("states", Limits.states());
    Round.arg("peak_bytes", Limits.peakBytes());
    BytesHwm.recordMax(memoryUsage());
    RoundMicros.observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - T0)
            .count()));
  };
  std::vector<DataflowState> NewFrontier;
  for (const DataflowState &S : Frontier) {
    uint32_t Produced = *States.find(S);
    for (unsigned I = 0; I < C.numThreads(); ++I) {
      // Skip the producer thread: the weighted saturation is exact and
      // transitively closed, so re-expanding yields only subsumed
      // successors -- the same argument as the boolean engines'.
      if (Produced & (1u << I))
        continue;
      if (!expand(S, I, NewFrontier)) {
        Finish(NewFrontier.size());
        return RoundStatus::Exhausted;
      }
    }
  }
  Finish(NewFrontier.size());
  ++Bound;
  Frontier = std::move(NewFrontier);
  return RoundStatus::Ok;
}

std::vector<VisibleState> DataflowEngine::newVisibleThisRound() const {
  std::vector<VisibleState> Out;
  for (const auto &[V, R] : FirstSeen)
    if (R == Bound)
      Out.push_back(V);
  return Out;
}

std::vector<std::pair<VisibleState, unsigned>>
DataflowEngine::visibleFirstSeen() const {
  return {FirstSeen.begin(), FirstSeen.end()};
}

std::vector<SinkHit> cuba::scanSinkHits(
    const std::vector<std::pair<VisibleState, unsigned>> &Visible,
    const TaintInfo &Taint, unsigned MaxRound) {
  // A leak: a reachable visible state has a sink's thread sitting at
  // the sink frame while the fact may be tainted.  The err state
  // carries no fact bits (the folded projection collapses it), so it
  // never witnesses a sink.
  QState FoldErr = static_cast<QState>(1)
                   << (Taint.SharedBits + Taint.FactNames.size());
  std::map<std::tuple<unsigned, Sym, int>, unsigned> Min;
  for (const auto &[V, R] : Visible) {
    if (R > MaxRound || V.Q == FoldErr)
      continue;
    uint32_t Facts = V.Q >> Taint.SharedBits;
    for (const TaintSinkSite &Sk : Taint.Sinks) {
      if (V.Tops[Sk.Thread] != Sk.Frame || !((Facts >> Sk.Fact) & 1))
        continue;
      auto [It, New] = Min.try_emplace({Sk.Thread, Sk.Frame, Sk.Fact}, R);
      if (!New && R < It->second)
        It->second = R;
    }
  }
  std::vector<SinkHit> Out;
  Out.reserve(Min.size());
  for (const auto &[K, R] : Min)
    Out.push_back({std::get<0>(K), std::get<1>(K), std::get<2>(K), R});
  return Out;
}

std::vector<SinkHit> DataflowEngine::sinkHits() const {
  return scanSinkHits(visibleFirstSeen(), Taint);
}

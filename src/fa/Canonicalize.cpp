//===-- fa/Canonicalize.cpp - Direct NFA canonicalization -----------------===//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//

#include "fa/Canonicalize.h"

#include <algorithm>

#include "fa/SubsetInterner.h"

using namespace cuba;

namespace {

/// The fused canonicalizer; one instance per call, all phases sharing
/// the subset arena.
class Canonicalizer {
public:
  Canonicalizer(const Nfa &A, const std::vector<uint32_t> &Roots)
      : A(A), NumSymbols(A.numSymbols()), NStates(A.numStates()),
        Mark(NStates, 0), Intern(NStates ? NStates / 2 + 1 : 1),
        BySym(NumSymbols + 1) {
    Work.reserve(NStates);
    Cur.assign(Roots.begin(), Roots.end());
  }

  CanonicalDfa run() {
    buildSubsets();
    CanonicalDfa C;
    C.NumSymbols = NumSymbols;
    if (!trim())
      return C; // Start cannot reach acceptance: the empty language.
    seedPartition();
    refine();
    renumber(C);
    return C;
  }

private:
  /// Epsilon-closes \p States in place (deduplicating the input), then
  /// sorts: the canonical subset key (same contract as the closure in
  /// Nfa::determinize).
  void close(std::vector<uint32_t> &States) {
    ++Epoch;
    size_t Keep = 0;
    Work.clear();
    for (uint32_t S : States) {
      if (Mark[S] == Epoch)
        continue;
      Mark[S] = Epoch;
      States[Keep++] = S;
      Work.push_back(S);
    }
    States.resize(Keep);
    while (!Work.empty()) {
      uint32_t S = Work.back();
      Work.pop_back();
      for (const Nfa::Edge &E : A.edgesFrom(S)) {
        if (E.Label != EpsSym || Mark[E.To] == Epoch)
          continue;
        Mark[E.To] = Epoch;
        States.push_back(E.To);
        Work.push_back(E.To);
      }
    }
    std::sort(States.begin(), States.end());
  }

  uint8_t subsetAccepts(uint32_t Id) const {
    for (const uint32_t *P = Intern.begin(Id), *E = Intern.end(Id); P != E;
         ++P)
      if (A.isAccepting(*P))
        return 1;
    return 0;
  }

  /// Sparse subset construction: only non-empty successor subsets exist
  /// (missing row entries are the implicit dead sink), rows are sorted
  /// by symbol.
  void buildSubsets() {
    close(Cur);
    Intern.intern(Cur);
    Acc.push_back(subsetAccepts(0));
    RowOff.push_back(0);

    std::vector<Sym> Touched;
    std::vector<uint32_t> Next;
    for (uint32_t Row = 0; Row < Intern.numSubsets(); ++Row) {
      for (const uint32_t *P = Intern.begin(Row), *E = Intern.end(Row);
           P != E; ++P) {
        for (const Nfa::Edge &Ed : A.edgesFrom(*P)) {
          if (Ed.Label == EpsSym)
            continue;
          std::vector<uint32_t> &B = BySym[Ed.Label];
          if (B.empty())
            Touched.push_back(Ed.Label);
          B.push_back(Ed.To);
        }
      }
      std::sort(Touched.begin(), Touched.end());
      for (Sym X : Touched) {
        std::vector<uint32_t> &B = BySym[X];
        Next.assign(B.begin(), B.end());
        B.clear();
        close(Next);
        auto [Id, New] = Intern.intern(Next);
        if (New)
          Acc.push_back(subsetAccepts(Id));
        RowSym.push_back(X);
        RowTo.push_back(Id);
      }
      Touched.clear();
      RowOff.push_back(static_cast<uint32_t>(RowSym.size()));
    }
  }

  /// Co-accessibility over the subset graph; compacts the alive states
  /// and their alive-to-alive edges into the trimmed CSR (TOff / TSym /
  /// TTo).  Returns false when the start subset is dead.
  bool trim() {
    uint32_t N = Intern.numSubsets();
    std::vector<uint32_t> RevOff(N + 1, 0), RevDat(RowTo.size());
    for (uint32_t T : RowTo)
      ++RevOff[T + 1];
    for (uint32_t S = 0; S < N; ++S)
      RevOff[S + 1] += RevOff[S];
    {
      std::vector<uint32_t> Cursor(RevOff.begin(), RevOff.end() - 1);
      for (uint32_t S = 0; S < N; ++S)
        for (uint32_t I = RowOff[S]; I < RowOff[S + 1]; ++I)
          RevDat[Cursor[RowTo[I]]++] = S;
    }
    std::vector<uint8_t> Alive(N, 0);
    Work.clear();
    for (uint32_t S = 0; S < N; ++S) {
      if (Acc[S]) {
        Alive[S] = 1;
        Work.push_back(S);
      }
    }
    while (!Work.empty()) {
      uint32_t S = Work.back();
      Work.pop_back();
      for (uint32_t I = RevOff[S]; I < RevOff[S + 1]; ++I) {
        uint32_t P = RevDat[I];
        if (Alive[P])
          continue;
        Alive[P] = 1;
        Work.push_back(P);
      }
    }
    if (!Alive[0])
      return false;

    AliveId.assign(N, UINT32_MAX);
    for (uint32_t S = 0; S < N; ++S)
      if (Alive[S])
        AliveId[S] = NAlive++;
    TOff.reserve(NAlive + 1);
    TOff.push_back(0);
    TAcc.reserve(NAlive);
    for (uint32_t S = 0; S < N; ++S) {
      if (!Alive[S])
        continue;
      for (uint32_t I = RowOff[S]; I < RowOff[S + 1]; ++I) {
        if (!Alive[RowTo[I]])
          continue;
        TSym.push_back(RowSym[I]);
        TTo.push_back(AliveId[RowTo[I]]);
      }
      TOff.push_back(static_cast<uint32_t>(TSym.size()));
      TAcc.push_back(Acc[S]);
    }
    return true;
  }

  /// Initial partition: group by (acceptance, defined-symbol-set)
  /// signature -- sound on a trimmed partial automaton (see the header)
  /// and what makes every block definedness-homogeneous, so refinement
  /// never needs the implicit dead block as a splitter.
  void seedPartition() {
    detail::SubsetInterner Sigs(4);
    std::vector<uint32_t> Sig;
    Class.resize(NAlive);
    for (uint32_t S = 0; S < NAlive; ++S) {
      Sig.clear();
      Sig.push_back(TAcc[S]);
      // The under-refinement mutation (the same hook Dfa::minimize
      // honours) collapses the seed to the acceptance split alone, so
      // the differential oracle's sensitivity check exercises this
      // pipeline too now that the engines canonicalize through it.
      if (!fa_testing::InjectMinimizeUnderRefine)
        for (uint32_t I = TOff[S]; I < TOff[S + 1]; ++I)
          Sig.push_back(TSym[I]);
      Class[S] = Sigs.intern(Sig).first;
    }
    uint32_t NumBlocks = Sigs.numSubsets();
    // Counted fill: block B spans [Count[B], Count[B+1]) after the
    // prefix sum.
    std::vector<uint32_t> Count(NumBlocks + 1, 0);
    for (uint32_t S = 0; S < NAlive; ++S)
      ++Count[Class[S] + 1];
    for (uint32_t B = 1; B <= NumBlocks; ++B)
      Count[B] += Count[B - 1];
    StateAt.resize(NAlive);
    PosOf.resize(NAlive);
    {
      std::vector<uint32_t> Cursor(Count.begin(), Count.end() - 1);
      for (uint32_t S = 0; S < NAlive; ++S) {
        uint32_t P = Cursor[Class[S]]++;
        StateAt[P] = S;
        PosOf[S] = P;
      }
    }
    for (uint32_t B = 0; B < NumBlocks; ++B) {
      BlockLo.push_back(Count[B]);
      BlockHi.push_back(Count[B + 1]);
      Marked.push_back(0);
      InWork.push_back(1);
      WorkBlocks.push_back(B);
    }
  }

  /// Hopcroft refinement on the trimmed sparse graph: splitters pull
  /// their incoming defined transitions, bucketed by symbol, and mark
  /// preimages to the front of their block spans (same swap scheme as
  /// Dfa::minimize, minus the per-symbol dense CSR over the alphabet).
  void refine() {
    // Per-state incoming defined transitions: (pred, symbol) pairs.
    std::vector<uint32_t> RevOff(NAlive + 1, 0);
    std::vector<uint32_t> RevPred(TTo.size());
    std::vector<Sym> RevSym(TTo.size());
    for (uint32_t T : TTo)
      ++RevOff[T + 1];
    for (uint32_t S = 0; S < NAlive; ++S)
      RevOff[S + 1] += RevOff[S];
    {
      std::vector<uint32_t> Cursor(RevOff.begin(), RevOff.end() - 1);
      for (uint32_t S = 0; S < NAlive; ++S)
        for (uint32_t I = TOff[S]; I < TOff[S + 1]; ++I) {
          uint32_t C = Cursor[TTo[I]]++;
          RevPred[C] = S;
          RevSym[C] = TSym[I];
        }
    }

    if (fa_testing::InjectMinimizeUnderRefine)
      WorkBlocks.clear(); // Simulated bug: never refine past acceptance.

    std::vector<uint32_t> Splitter;
    std::vector<Sym> TouchedSyms;
    std::vector<uint32_t> TouchedBlocks;
    while (!WorkBlocks.empty()) {
      uint32_t C = WorkBlocks.back();
      WorkBlocks.pop_back();
      InWork[C] = 0;
      Splitter.assign(StateAt.begin() + BlockLo[C],
                      StateAt.begin() + BlockHi[C]);
      // Bucket the splitter's incoming transitions by symbol.
      for (uint32_t T : Splitter) {
        for (uint32_t I = RevOff[T]; I < RevOff[T + 1]; ++I) {
          std::vector<uint32_t> &B = BySym[RevSym[I]];
          if (B.empty())
            TouchedSyms.push_back(RevSym[I]);
          B.push_back(RevPred[I]);
        }
      }
      for (Sym X : TouchedSyms) {
        std::vector<uint32_t> &Pre = BySym[X];
        for (uint32_t P : Pre) {
          uint32_t B = Class[P];
          uint32_t MarkPos = BlockLo[B] + Marked[B];
          uint32_t Pos = PosOf[P];
          if (Pos < MarkPos)
            continue; // Already marked (multiple edges into C).
          uint32_t Other = StateAt[MarkPos];
          StateAt[MarkPos] = P;
          StateAt[Pos] = Other;
          PosOf[P] = MarkPos;
          PosOf[Other] = Pos;
          if (Marked[B]++ == 0)
            TouchedBlocks.push_back(B);
        }
        Pre.clear();
        for (uint32_t B : TouchedBlocks) {
          uint32_t M = Marked[B];
          Marked[B] = 0;
          uint32_t Size = BlockHi[B] - BlockLo[B];
          if (M == Size)
            continue; // The whole block maps into the splitter.
          uint32_t NewB = static_cast<uint32_t>(BlockLo.size());
          BlockLo.push_back(BlockLo[B]);
          BlockHi.push_back(BlockLo[B] + M);
          Marked.push_back(0);
          InWork.push_back(0);
          BlockLo[B] += M;
          for (uint32_t P = BlockLo[NewB]; P < BlockHi[NewB]; ++P)
            Class[StateAt[P]] = NewB;
          if (InWork[B]) {
            InWork[NewB] = 1;
            WorkBlocks.push_back(NewB);
          } else {
            uint32_t Push = M <= Size - M ? NewB : B;
            InWork[Push] = 1;
            WorkBlocks.push_back(Push);
          }
        }
        TouchedBlocks.clear();
      }
      TouchedSyms.clear();
    }
  }

  /// Canonical BFS renumbering from the start class, exploring defined
  /// symbols in increasing order (rows are symbol-sorted); unique for a
  /// trimmed minimal automaton, so the output equals
  /// determinize().canonicalize()'s.
  void renumber(CanonicalDfa &C) const {
    std::vector<uint32_t> NewId(BlockLo.size(), CanonicalDfa::NoState);
    std::vector<uint32_t> Order; // Representative state per output id.
    Order.reserve(BlockLo.size());
    uint32_t StartClass = Class[AliveId[0]];
    NewId[StartClass] = 0;
    Order.push_back(AliveId[0]);
    for (size_t Head = 0; Head < Order.size(); ++Head) {
      uint32_t S = Order[Head];
      for (uint32_t I = TOff[S]; I < TOff[S + 1]; ++I) {
        uint32_t ToClass = Class[TTo[I]];
        if (NewId[ToClass] != CanonicalDfa::NoState)
          continue;
        NewId[ToClass] = static_cast<uint32_t>(Order.size());
        Order.push_back(TTo[I]);
      }
    }
    uint32_t NumClasses = static_cast<uint32_t>(Order.size());
    C.Start = 0;
    C.Table.assign(static_cast<size_t>(NumClasses) * NumSymbols,
                   CanonicalDfa::NoState);
    C.Accepting.assign(NumClasses, 0);
    for (uint32_t Id = 0; Id < NumClasses; ++Id) {
      uint32_t S = Order[Id];
      C.Accepting[Id] = TAcc[S];
      for (uint32_t I = TOff[S]; I < TOff[S + 1]; ++I)
        C.Table[static_cast<size_t>(Id) * NumSymbols + (TSym[I] - 1)] =
            NewId[Class[TTo[I]]];
    }
  }

  const Nfa &A;
  const uint32_t NumSymbols;
  const uint32_t NStates;

  // Closure scratch.
  std::vector<uint32_t> Mark;
  uint32_t Epoch = 0;
  std::vector<uint32_t> Work, Cur;

  // Subset arena: sparse symbol-sorted rows in a CSR (RowOff / RowSym /
  // RowTo) plus per-subset acceptance.
  detail::SubsetInterner Intern;
  std::vector<uint8_t> Acc;
  std::vector<uint32_t> RowOff, RowTo;
  std::vector<Sym> RowSym;
  std::vector<std::vector<uint32_t>> BySym; // Shared per-symbol buckets.

  // Trimmed automaton (dense alive ids).
  std::vector<uint32_t> AliveId;
  uint32_t NAlive = 0;
  std::vector<uint32_t> TOff, TTo;
  std::vector<Sym> TSym;
  std::vector<uint8_t> TAcc;

  // Partition state (same layout as Dfa::minimize).
  std::vector<uint32_t> Class, StateAt, PosOf;
  std::vector<uint32_t> BlockLo, BlockHi, Marked;
  std::vector<uint8_t> InWork;
  std::vector<uint32_t> WorkBlocks;
};

} // namespace

CanonicalDfa cuba::canonicalizeNfa(const Nfa &A,
                                   const std::vector<uint32_t> &Roots) {
  return Canonicalizer(A, Roots).run();
}

CanonicalDfa cuba::canonicalizeNfa(const Nfa &A) {
  std::vector<uint32_t> Roots;
  for (uint32_t S = 0; S < A.numStates(); ++S)
    if (A.isInitial(S))
      Roots.push_back(S);
  return Canonicalizer(A, Roots).run();
}

//===-- bp/AstPrinter.h - Boolean-program AST printer -----------*- C++ -*-===//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a Boolean-program AST back to source text.  The output
/// re-parses to an equivalent program (print/parse round-trips), which
/// the tests exercise; the CLI exposes it as --dump-ast.
///
//===----------------------------------------------------------------------===//

#ifndef CUBA_BP_ASTPRINTER_H
#define CUBA_BP_ASTPRINTER_H

#include <string>

#include "bp/Ast.h"

namespace cuba::bp {

/// Renders one expression (fully parenthesised, so precedence never
/// changes meaning on re-parse).
std::string printExpr(const Expr &E);

/// Renders a whole program.
std::string printProgram(const Program &P);

} // namespace cuba::bp

#endif // CUBA_BP_ASTPRINTER_H

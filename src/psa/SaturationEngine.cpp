//===-- psa/SaturationEngine.cpp - Shared multi-root post* ----------------===//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//

#include "psa/SaturationEngine.h"

#include "fa/Canonicalize.h"
#include "psa/Semiring.h"
#include "psa/WeightedPostStar.h"
#include "support/Statistic.h"

using namespace cuba;

bool cuba::psa_testing::InjectDropMaskGrowth = false;

Nfa SharedSaturation::rootView(QState Root) const {
  Nfa A(NumSymbols);
  A.reserveStates(NumStates);
  for (uint32_t S = 0; S < NumStates; ++S)
    A.addState();
  for (uint32_t S = NumShared; S < NumStates; ++S)
    if (AcceptBase[S])
      A.setAccepting(S);
  if (StartAccepting)
    A.setAccepting(Root);
  for (size_t T = 0; T < TFrom.size(); ++T)
    if (activeFor(T, Root))
      A.addEdge(TFrom[T], TLabel[T], TTo[T]);
  return A;
}

std::vector<std::pair<QState, CanonicalDfa>>
SharedSaturation::extractRoot(QState Root) const {
  static Statistic ExtractCounter("saturation.extractions",
                                  /*Deterministic=*/false);
  ++ExtractCounter;
  Nfa View = rootView(Root);
  std::vector<std::pair<QState, CanonicalDfa>> Out;
  std::vector<uint32_t> Target(1);
  for (QState Q2 = 0; Q2 < NumShared; ++Q2) {
    Target[0] = Q2;
    CanonicalDfa D = canonicalizeNfa(View, Target);
    if (D.Start == CanonicalDfa::NoState)
      continue; // Empty language at this target: no successor.
    Out.emplace_back(Q2, std::move(D));
  }
  return Out;
}

SharedSaturationResult cuba::sharedPostStar(const Pds &P, uint32_t NumShared,
                                            const CanonicalDfa &Lang,
                                            LimitTracker *Limits) {
  static Statistic SatCounter("saturation.shared",
                              /*Deterministic=*/false);
  ++SatCounter;
  // The classical mask saturation is the boolean-set instantiation of
  // the semiring-generic core; the retained relation adopts the
  // domain's flat mask rows without a copy.  Bit-identity with the
  // pre-refactor engine is pinned by SharedSaturationTest against
  // tests/ReferenceSharedSaturation.h.
  WeightedSaturatorT<BoolSetDomain> S(P, NumShared, Lang, Limits,
                                      BoolSetDomain());
  WeightedResult<BoolSetDomain> R = S.run();
  SharedSaturationResult Out;
  Out.Complete = R.Complete;
  SharedSaturation &Sat = Out.Sat;
  Sat.NumShared = R.Rel.NumShared;
  Sat.NumStates = R.Rel.NumStates;
  Sat.NumSymbols = R.Rel.NumSymbols;
  Sat.MaskWords = R.Rel.Dom.maskWords();
  Sat.TFrom = std::move(R.Rel.TFrom);
  Sat.TTo = std::move(R.Rel.TTo);
  Sat.TLabel = std::move(R.Rel.TLabel);
  Sat.Masks = R.Rel.Dom.takeActive();
  Sat.AcceptBase = std::move(R.Rel.AcceptBase);
  Sat.StartAccepting = R.Rel.StartAccepting;
  return Out;
}

//===-- tests/CpdsIORoundTripTest.cpp - CpdsIO round-trip tests ------------=//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// parse -> print -> parse must reproduce an identical CPDS, for every
/// hand-built model of the paper's evaluation and for generated random
/// instances.  Identity is checked structurally (states, alphabets,
/// actions, initial configuration, bad patterns) and on the printed
/// text, which must be a fixed point of print(parse(.)).
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "bp/Translate.h"
#include "core/CubaDriver.h"
#include "models/Models.h"
#include "pds/CpdsIO.h"
#include "testing/RandomCpds.h"

using namespace cuba;

namespace {

void expectSameAction(const Action &A, const Action &B, const char *Ctx) {
  EXPECT_EQ(A.SrcQ, B.SrcQ) << Ctx;
  EXPECT_EQ(A.SrcSym, B.SrcSym) << Ctx;
  EXPECT_EQ(A.DstQ, B.DstQ) << Ctx;
  EXPECT_EQ(A.Dst0, B.Dst0) << Ctx;
  EXPECT_EQ(A.Dst1, B.Dst1) << Ctx;
}

/// Structural identity of two frozen CPDS files (modulo action labels
/// that the printer legitimately drops when they would not re-lex).
void expectSameCpds(const CpdsFile &A, const CpdsFile &B) {
  const Cpds &CA = A.System, &CB = B.System;
  ASSERT_EQ(CA.numSharedStates(), CB.numSharedStates());
  for (QState Q = 0; Q < CA.numSharedStates(); ++Q)
    EXPECT_EQ(CA.sharedStateName(Q), CB.sharedStateName(Q));
  EXPECT_EQ(CA.initialShared(), CB.initialShared());
  ASSERT_EQ(CA.numThreads(), CB.numThreads());
  EXPECT_EQ(CA.initialState(), CB.initialState());
  for (unsigned I = 0; I < CA.numThreads(); ++I) {
    const Pds &PA = CA.thread(I), &PB = CB.thread(I);
    EXPECT_EQ(CA.threadName(I), CB.threadName(I));
    ASSERT_EQ(PA.numSymbols(), PB.numSymbols()) << "thread " << I;
    for (Sym S = 1; S <= PA.numSymbols(); ++S)
      EXPECT_EQ(PA.symbolName(S), PB.symbolName(S)) << "thread " << I;
    ASSERT_EQ(PA.actions().size(), PB.actions().size()) << "thread " << I;
    for (size_t R = 0; R < PA.actions().size(); ++R)
      expectSameAction(PA.actions()[R], PB.actions()[R], "action");
  }
  const auto &PatA = A.Property.badPatterns();
  const auto &PatB = B.Property.badPatterns();
  ASSERT_EQ(PatA.size(), PatB.size());
  for (size_t I = 0; I < PatA.size(); ++I) {
    EXPECT_EQ(PatA[I].Q, PatB[I].Q) << "pattern " << I;
    EXPECT_EQ(PatA[I].Tops, PatB[I].Tops) << "pattern " << I;
  }
}

/// The round-trip law proper: printing is injective up to structural
/// identity and a fixed point of print(parse(.)).
void expectRoundTrips(const CpdsFile &File, const std::string &Ctx) {
  std::string Text = printCpds(File);
  auto Reparsed = parseCpds(Text);
  ASSERT_TRUE(Reparsed) << Ctx << ": " << Reparsed.error().str() << "\n"
                        << Text;
  expectSameCpds(File, *Reparsed);
  EXPECT_EQ(printCpds(*Reparsed), Text) << Ctx;
}

TEST(CpdsIORoundTrip, Fig1) {
  expectRoundTrips(models::buildFig1(), "fig1");
}

TEST(CpdsIORoundTrip, Fig2) {
  expectRoundTrips(models::buildFig2(), "fig2");
}

TEST(CpdsIORoundTrip, AllTable2Instances) {
  for (const models::BenchmarkInstance &Row : models::table2Instances())
    expectRoundTrips(Row.File, Row.Suite + " " + Row.Config);
}

TEST(CpdsIORoundTrip, GeneratedInstances) {
  using cuba::testing::cornerShapeOptions;
  using cuba::testing::generateRandomCpds;
  for (uint64_t Seed = 0; Seed < 100; ++Seed)
    expectRoundTrips(generateRandomCpds(Seed, cornerShapeOptions(Seed)),
                     "seed " + std::to_string(Seed));
}

// Every committed corpus model's translation must obey the same law,
// and the round-tripped system must reproduce the original verdict --
// the .cpds text is the interchange format between `--emit-cpds` and a
// later `cuba` run, so structural identity alone would not be enough if
// the verifier read the two systems differently.
TEST(CpdsIORoundTrip, BooleanProgramCorpus) {
  unsigned Seen = 0;
  for (const auto &Entry :
       std::filesystem::directory_iterator(CUBA_CORPUS_DIR)) {
    if (Entry.path().extension() != ".bp")
      continue;
    ++Seen;
    std::ifstream In(Entry.path());
    std::stringstream SS;
    SS << In.rdbuf();
    auto File = bp::compileBooleanProgram(SS.str());
    ASSERT_TRUE(File) << Entry.path() << ": " << File.error().str();
    expectRoundTrips(*File, Entry.path().string());

    auto Reparsed = parseCpds(printCpds(*File));
    ASSERT_TRUE(Reparsed);
    DriverOptions O;
    O.Run.Limits = ResourceLimits{500'000, 50'000'000, 24, 0};
    DriverResult Before = runCuba(File->System, File->Property, O);
    DriverResult After = runCuba(Reparsed->System, Reparsed->Property, O);
    EXPECT_EQ(Before.Run.outcome(), After.Run.outcome()) << Entry.path();
    EXPECT_EQ(Before.Run.BugBound, After.Run.BugBound) << Entry.path();
    EXPECT_EQ(Before.Run.ConvergedAt, After.Run.ConvergedAt) << Entry.path();
  }
  EXPECT_GE(Seen, 10u) << "corpus shrank below 10 models";
}

// The shorthand form is expanded on parse and must still round-trip.
TEST(CpdsIORoundTrip, SharedShorthand) {
  auto File = parseCpds("shared 3\n"
                        "thread P {\n"
                        "  alphabet a\n"
                        "  stack a\n"
                        "  (0, a) -> (2, eps)\n"
                        "}\n");
  ASSERT_TRUE(File) << File.error().str();
  EXPECT_EQ(File->System.numSharedStates(), 3u);
  expectRoundTrips(*File, "shorthand");
}

} // namespace

//===-- testing/RandomBp.h - Seeded random Boolean programs -----*- C++ -*-===//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded generator of well-formed concurrent Boolean programs, the
/// program-level counterpart of testing/RandomCpds: it emits ASTs that
/// always survive the whole frontend (print -> parse -> Sema ->
/// Translate), sized to stay inside the translation guard rails.  Like
/// RandomCpds it runs on its own SplitMix64 stream, so the same (seed,
/// options) pair yields the same program on every platform.
///
//===----------------------------------------------------------------------===//

#ifndef CUBA_TESTING_RANDOMBP_H
#define CUBA_TESTING_RANDOMBP_H

#include <cstdint>

#include "bp/Ast.h"

namespace cuba::testing {

/// Knobs for the program generator.  All ranges are inclusive; the
/// defaults keep the translated CPDS small enough for the differential
/// oracle's budgets.
struct RandomBpOptions {
  unsigned MinShared = 1;
  unsigned MaxShared = 3;
  /// thread_create statements in main (entries may repeat).
  unsigned MinThreads = 1;
  unsigned MaxThreads = 3;
  /// Callable helper functions besides the thread entries.
  unsigned MaxHelpers = 2;
  unsigned MaxParams = 2;
  /// `decl` locals per function (params + locals share the slot space).
  unsigned MaxLocals = 2;
  /// Statements per body (before structured bodies recurse).
  unsigned MinStmts = 1;
  unsigned MaxStmts = 4;
  /// Nesting depth of while / if / atomic.
  unsigned MaxDepth = 2;
  unsigned MaxExprDepth = 2;
  /// Probability that a helper returns bool (and so ends in `return e`).
  double HelperReturnsBoolProb = 0.5;
  /// Per-statement construct probabilities; the remainder is assignments
  /// and skips.
  double CallProb = 0.2;
  /// Fraction of generated calls that target the enclosing helper
  /// itself (guarded by `if (*)` so recursion stays optional per path).
  double RecurseProb = 0.3;
  double AtomicProb = 0.1;
  double BranchProb = 0.25;
  double AssertProb = 0.15;
  double AssumeProb = 0.1;
  /// Probability that an assignment writes two variables at once.
  double ParallelAssignProb = 0.25;
  /// Probability that a parallel assignment carries `constrain e`.
  double ConstrainProb = 0.3;
  /// Probability that a function gets unstructured control flow: labels
  /// anywhere outside atomics (some possibly untargeted) plus guarded
  /// nondeterministic multi-target `goto`s -- back edges, forward edges,
  /// and jumps into and out of branch arms.
  double GotoLoopProb = 0.25;
};

/// Generates one well-formed program from \p Seed.  Never fails: every
/// emitted program passes Sema and translates within the size guard
/// (the generator aborts loudly otherwise, as RandomCpds does).
bp::Program generateRandomBp(uint64_t Seed, const RandomBpOptions &Opts = {});

/// Derives one of a rotating set of shape presets from \p Seed: default
/// mix, recursive call chains, atomic-section lock protocols, parallel
/// assignments with constrain, goto loops, and multi-thread mains.
/// Feeding consecutive seeds through this covers every preset evenly
/// while staying fully reproducible.
RandomBpOptions bpShapeOptions(uint64_t Seed);

} // namespace cuba::testing

#endif // CUBA_TESTING_RANDOMBP_H

//===-- core/CbaEngine.cpp - Explicit context-bounded engine --------------===//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//

#include "core/CbaEngine.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "support/Statistic.h"

using namespace cuba;

CbaEngine::CbaEngine(const Cpds &C, const ResourceLimits &Limits)
    : C(C), Limits(Limits) {
  assert(C.frozen() && "CbaEngine requires a frozen CPDS");
  GlobalState Init = C.initialState();
  addState(Init, 0, UINT32_MAX, 0, 0);
  Frontier.push_back(std::move(Init));
}

bool CbaEngine::addState(const GlobalState &S, unsigned Round,
                         uint32_t Parent, unsigned Thread,
                         uint32_t ActionIdx) {
  StateInfo Info;
  Info.Id = static_cast<uint32_t>(StateById.size());
  Info.Round = Round;
  Info.Parent = Parent;
  Info.Thread = Thread;
  Info.ActionIdx = ActionIdx;
  auto [It, New] = Reached.emplace(S, Info);
  assert(New && "addState() requires a fresh state");
  (void)New;
  StateById.push_back(&It->first);
  VisibleState V = project(S);
  VisibleSeen.emplace(V, Round); // Keeps the earliest round if present.
  return Limits.chargeState();
}

CbaEngine::RoundStatus
CbaEngine::closeUnderThread(unsigned I, const std::vector<GlobalState> &Seeds,
                            std::vector<GlobalState> &NewFrontier) {
  // Merged BFS over thread-I steps from all expansion seeds.  A local
  // visited set (rather than pruning against R alone) is what makes the
  // frontier optimisation exact: a state first added this round by a
  // different thread's closure must still be traversed here if it also
  // lies inside a thread-I closure of a frontier state.
  std::unordered_set<GlobalState, GlobalStateHash> Local;
  std::deque<GlobalState> Queue;
  for (const GlobalState &S : Seeds) {
    Local.insert(S);
    Queue.push_back(S);
  }

  std::vector<std::pair<GlobalState, uint32_t>> Succs;
  while (!Queue.empty()) {
    GlobalState S = std::move(Queue.front());
    Queue.pop_front();
    uint32_t ParentId = Reached.find(S)->second.Id;
    Succs.clear();
    C.threadSuccessorsWithActions(S, I, Succs);
    if (!Limits.chargeStep(Succs.size() + 1))
      return RoundStatus::Exhausted;
    for (auto &[V, ActionIdx] : Succs) {
      if (!Local.insert(V).second)
        continue;
      auto It = Reached.find(V);
      if (It == Reached.end()) {
        // Genuinely new: first reached with Bound+1 contexts.
        if (!addState(V, Bound + 1, ParentId, I, ActionIdx))
          return RoundStatus::Exhausted;
        NewFrontier.push_back(V);
        Queue.push_back(std::move(V));
      } else if (It->second.Round > Bound) {
        // Added earlier this round by another thread's closure; continue
        // through it, but it is already stored.
        Queue.push_back(std::move(V));
      }
      // Otherwise V is an older state: its thread-I closure was fully
      // expanded in the round after its discovery, so prune here.
    }
  }
  return RoundStatus::Ok;
}

CbaEngine::RoundStatus CbaEngine::advance() {
  ++Statistics::counter("cba.rounds");
  // Seeds are snapshotted before the round: states discovered during
  // this round must not become seeds of a later thread's closure, or
  // the round would mix multiple context switches.
  std::vector<GlobalState> Seeds;
  if (ExpandAll) {
    Seeds.reserve(Reached.size());
    for (const auto &[S, Info] : Reached)
      Seeds.push_back(S);
  } else {
    Seeds = Frontier;
  }
  std::vector<GlobalState> NewFrontier;
  for (unsigned I = 0; I < C.numThreads(); ++I)
    if (closeUnderThread(I, Seeds, NewFrontier) == RoundStatus::Exhausted)
      return RoundStatus::Exhausted;
  ++Bound;
  Frontier = std::move(NewFrontier);
  return RoundStatus::Ok;
}

std::vector<VisibleState> CbaEngine::newVisibleThisRound() const {
  std::vector<VisibleState> New;
  for (const auto &[V, Round] : VisibleSeen)
    if (Round == Bound)
      New.push_back(V);
  return New;
}

std::vector<TraceStep>
CbaEngine::traceToVisible(const VisibleState &V) const {
  // Find the earliest-discovered state projecting to V.
  const StateInfo *Best = nullptr;
  const GlobalState *BestState = nullptr;
  for (const auto &[S, Info] : Reached) {
    if (project(S) != V)
      continue;
    if (!Best || Info.Round < Best->Round ||
        (Info.Round == Best->Round && Info.Id < Best->Id)) {
      Best = &Info;
      BestState = &S;
    }
  }
  if (!Best)
    return {};

  // Walk the first-discovery parent chain back to the initial state.
  std::vector<TraceStep> Trace;
  const StateInfo *Cur = Best;
  const GlobalState *CurState = BestState;
  while (true) {
    TraceStep Step;
    Step.State = *CurState;
    if (Cur->Parent == UINT32_MAX) {
      Trace.push_back(std::move(Step)); // The initial state, no label.
      break;
    }
    Step.Thread = Cur->Thread;
    const Action &A = C.thread(Cur->Thread).actions()[Cur->ActionIdx];
    Step.Label = A.Label.empty() ? "step" : A.Label;
    Trace.push_back(std::move(Step));
    CurState = StateById[Cur->Parent];
    Cur = &Reached.find(*CurState)->second;
  }
  std::reverse(Trace.begin(), Trace.end());
  return Trace;
}

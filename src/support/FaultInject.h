//===-- support/FaultInject.h - Deterministic fault injection ---*- C++ -*-===//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A step-indexed fault-injection harness: instrumented sites probe
/// fire(Point) and the harness makes exactly one probe fail — the Nth
/// probe of the armed point, counted from arming.  Because the sweep
/// tests run serially and the probe counters advance in program order,
/// "inject at step N" is a deterministic, reproducible coordinate: the
/// same N fails the same site on every run.
///
/// Points:
///   Alloc  — arena/store growth (checkAlloc() throws InjectedFault,
///            which is-a std::bad_alloc, so the handler under test is
///            the same one a real allocation failure would reach).
///   Step   — budget accounting (LimitTracker::chargeStep marks the run
///            exhausted with ExhaustKind::Injected; flows the normal
///            truncation path, no exception).
///   Worker — thread-pool task bodies (throws InjectedFault inside a
///            worker; exercises the pool's deterministic rethrow).
///   Io     — file reads / frontend input (the site returns its normal
///            error value, e.g. an ErrorOr error).
///
/// The disarmed cost is one relaxed atomic load per probe.  Arming is
/// process-global and intended for single-threaded test harnesses; the
/// only cross-thread point (Worker) uses an atomic counter, so the probe
/// itself is race-free even if which worker observes the Nth probe is
/// schedule-dependent.
///
/// Environment configuration (read by fault::armFromEnv(), which the CLI
/// calls at startup):
///   CUBA_FAULT_POINT = alloc | step | worker | io
///   CUBA_FAULT_AT    = N   (0-based probe index; default 0)
///
//===----------------------------------------------------------------------===//

#ifndef CUBA_SUPPORT_FAULTINJECT_H
#define CUBA_SUPPORT_FAULTINJECT_H

#include <atomic>
#include <cstdint>
#include <new>

namespace cuba {
namespace fault {

enum class Point : unsigned { Alloc, Step, Worker, Io };
inline constexpr unsigned NumPoints = 4;

/// Thrown by checkAlloc() and the Worker point.  Derives from
/// std::bad_alloc so the catch clauses under test are exactly the ones
/// a real allocation failure would reach.
class InjectedFault : public std::bad_alloc {
public:
  const char *what() const noexcept override {
    return "cuba: injected fault";
  }
};

namespace detail {
extern std::atomic<bool> Armed;
/// Advances the probe counter for \p P; true when this probe is the one
/// configured to fail.  Out of line — only reached while armed.
bool fireSlow(Point P);
} // namespace detail

/// True while some point is armed.  One relaxed load; this is the whole
/// disarmed cost of a probe.
inline bool armed() { return detail::Armed.load(std::memory_order_relaxed); }

/// Probe: true exactly when the armed point's configured index is hit.
inline bool fire(Point P) { return armed() && detail::fireSlow(P); }

/// Probe for allocation sites: throws InjectedFault instead of returning.
inline void checkAlloc() {
  if (fire(Point::Alloc))
    throw InjectedFault();
}

/// Arms point \p P to fail its \p Index-th probe (0-based), resetting
/// all probe counters.
void arm(Point P, uint64_t Index);

/// Disarms everything and resets counters.  Probe tallies survive until
/// the next arm()/reset(), so a sweep can first count a run's probes.
void disarm();

/// Number of probes point \p P has seen since the last arm()/reset().
uint64_t probes(Point P);

/// Resets probe counters without changing the armed state.
void resetCounters();

/// Whether the armed fault has fired yet (at most once per arm()).
bool fired();

/// Reads CUBA_FAULT_POINT / CUBA_FAULT_AT and arms accordingly; no-op
/// when the variables are unset or unrecognized.
void armFromEnv();

/// RAII arming for tests: arms on construction, disarms on destruction.
class ScopedArm {
public:
  ScopedArm(Point P, uint64_t Index) { arm(P, Index); }
  ~ScopedArm() { disarm(); }
  ScopedArm(const ScopedArm &) = delete;
  ScopedArm &operator=(const ScopedArm &) = delete;
};

} // namespace fault
} // namespace cuba

#endif // CUBA_SUPPORT_FAULTINJECT_H

//===-- exec/WorkerLocal.h - Per-worker scratch slots -----------*- C++ -*-===//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One value of T per pool participant, padded to a cache line so two
/// workers' scratch never share one.  The engines keep their derive-phase
/// arenas (stack overlays, successor buffers) here: a task indexes the
/// slot by the worker id its ThreadPool passed in, which is exclusive for
/// the duration of the task, so no synchronisation is needed.
///
/// Determinism note: worker-local state is scratch, not output.  Anything
/// a round's result depends on must be written to task-indexed slots (see
/// exec/ParallelRound.h); the contents of a WorkerLocal between batches
/// are meaningful only through handles the tasks published there (e.g.
/// which overlay a given chunk's candidates point into).
///
//===----------------------------------------------------------------------===//

#ifndef CUBA_EXEC_WORKERLOCAL_H
#define CUBA_EXEC_WORKERLOCAL_H

#include <cassert>
#include <cstddef>
#include <vector>

#include "exec/ThreadPool.h"

namespace cuba::exec {

template <typename T> class WorkerLocal {
public:
  explicit WorkerLocal(const ThreadPool &Pool) : Slots(Pool.jobs()) {}
  explicit WorkerLocal(unsigned Jobs) : Slots(Jobs ? Jobs : 1) {}

  size_t size() const { return Slots.size(); }

  /// The calling worker's slot; \p Worker is the id ThreadPool::run
  /// passed to the task.
  T &get(unsigned Worker) {
    assert(Worker < Slots.size() && "worker id out of range for this pool");
    return Slots[Worker].Value;
  }

  /// Serial sweep over all slots (for summation / reset between rounds).
  template <typename Fn> void forEach(Fn &&F) {
    for (Padded &S : Slots)
      F(S.Value);
  }

private:
  struct alignas(64) Padded {
    T Value{};
  };
  std::vector<Padded> Slots;
};

} // namespace cuba::exec

#endif // CUBA_EXEC_WORKERLOCAL_H

//===-- core/SymbolicEngine.cpp - PSA-based symbolic engine ---------------===//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//

#include "core/SymbolicEngine.h"

#include <algorithm>

#include "psa/PAutomaton.h"
#include "psa/PostStar.h"
#include "support/Statistic.h"

using namespace cuba;

/// Builds the canonical DFA accepting exactly the single word \p Word.
static CanonicalDfa singleWordLanguage(uint32_t NumSymbols,
                                       const std::vector<Sym> &Word) {
  Nfa A(NumSymbols);
  uint32_t Cur = A.addState();
  A.setInitial(Cur);
  for (Sym S : Word) {
    uint32_t Next = A.addState();
    A.addEdge(Cur, S, Next);
    Cur = Next;
  }
  A.setAccepting(Cur);
  return A.determinize().canonicalize();
}

SymbolicEngine::SymbolicEngine(const Cpds &C, const ResourceLimits &Limits)
    : C(C), Limits(Limits), VisibleSeen(C), TopsCache(C.numThreads()) {
  assert(C.frozen() && "SymbolicEngine requires a frozen CPDS");
  for (unsigned I = 0; I < C.numThreads(); ++I)
    Bottomed.push_back(
        eliminateEmptyStackRules(C.thread(I), C.numSharedStates()));

  // The initial symbolic state: each thread's language is the lifted
  // initial stack (one word, ending in the bottom marker).
  GlobalState Init = C.initialState();
  SymbolicState S;
  S.Q = Init.Q;
  for (unsigned I = 0; I < C.numThreads(); ++I) {
    // Stacks are stored bottom-first; automata read top-first.
    std::vector<Sym> Word(Init.Stacks[I].rbegin(), Init.Stacks[I].rend());
    Word.push_back(Bottomed[I].Bottom);
    S.Langs.push_back(
        singleWordLanguage(Bottomed[I].P.numSymbols(), Word));
  }
  addState(std::move(S), 0, UINT32_MAX, &Frontier);
}

const std::vector<Sym> &SymbolicEngine::topsOf(unsigned Thread,
                                               const CanonicalDfa &D) {
  auto &Cache = TopsCache[Thread];
  auto It = Cache.find(D);
  if (It != Cache.end())
    return It->second;

  // All canonical states are useful, so every edge leaving the start
  // lies on an accepting path; its label is a reachable top.  The
  // bottom marker on top encodes the empty original stack.
  std::vector<Sym> Tops;
  Sym Bottom = Bottomed[Thread].Bottom;
  if (D.Start != CanonicalDfa::NoState) {
    if (D.Accepting[D.Start])
      Tops.push_back(EpsSym); // Unreachable with lifted words; general.
    for (Sym X = 1; X <= D.NumSymbols; ++X) {
      if (D.Table[static_cast<size_t>(D.Start) * D.NumSymbols + (X - 1)] ==
          CanonicalDfa::NoState)
        continue;
      Tops.push_back(X == Bottom ? EpsSym : X);
    }
  }
  std::sort(Tops.begin(), Tops.end());
  Tops.erase(std::unique(Tops.begin(), Tops.end()), Tops.end());
  return Cache.emplace(D, std::move(Tops)).first->second;
}

void SymbolicEngine::recordVisible(const SymbolicState &S, unsigned Round) {
  // T(tau) = {q} x T(A_1) x ... x T(A_n)  (App. E, formula (4)).
  unsigned N = C.numThreads();
  VisibleState V;
  V.Q = S.Q;
  V.Tops.assign(N, EpsSym);
  // Iterative odometer over the per-thread top sets.
  std::vector<const std::vector<Sym> *> Sets;
  Sets.reserve(N);
  for (unsigned I = 0; I < N; ++I) {
    Sets.push_back(&topsOf(I, S.Langs[I]));
    if (Sets.back()->empty())
      return; // Empty language row: no visible states (cannot happen).
  }
  std::vector<size_t> Idx(N, 0);
  while (true) {
    for (unsigned I = 0; I < N; ++I)
      V.Tops[I] = (*Sets[I])[Idx[I]];
    VisibleSeen.insert(V, Round);
    unsigned I = 0;
    while (I < N && ++Idx[I] == Sets[I]->size()) {
      Idx[I] = 0;
      ++I;
    }
    if (I == N)
      break;
  }
}

std::pair<bool, bool>
SymbolicEngine::addState(SymbolicState S, unsigned Round, uint32_t Producer,
                         std::vector<SymbolicState> *NewFrontier) {
  uint32_t Mask = Producer == UINT32_MAX ? 0u : (1u << Producer);
  auto [It, New] = States.emplace(std::move(S), Mask);
  if (!New) {
    It->second |= Mask;
    return {false, true};
  }
  ++Statistics::counter("symbolic.states");
  recordVisible(It->first, Round);
  if (NewFrontier)
    NewFrontier->push_back(It->first);
  return {true, Limits.chargeState()};
}

/// Renders a canonical DFA as a P-automaton rooted at \p Root.  The
/// start state's row is duplicated onto the root so that no edge enters
/// a shared state (a post* precondition) even when the language's DFA
/// has transitions back into its start.
static PAutomaton rootedInput(uint32_t NumShared, const CanonicalDfa &D,
                              QState Root) {
  PAutomaton A(NumShared, D.NumSymbols);
  A.nfa().reserveStates(NumShared + D.numStates());
  assert(D.Start != CanonicalDfa::NoState && "empty language row");
  std::vector<uint32_t> Map(D.numStates());
  for (uint32_t U = 0; U < D.numStates(); ++U)
    Map[U] = A.addState();
  for (uint32_t U = 0; U < D.numStates(); ++U) {
    if (D.Accepting[U])
      A.setAccepting(Map[U]);
    for (Sym X = 1; X <= D.NumSymbols; ++X) {
      uint32_t V = D.Table[static_cast<size_t>(U) * D.NumSymbols + (X - 1)];
      if (V != CanonicalDfa::NoState)
        A.addEdge(Map[U], X, Map[V]);
    }
  }
  // The root mirrors the start state.
  if (D.Accepting[D.Start])
    A.setAccepting(Root);
  for (Sym X = 1; X <= D.NumSymbols; ++X) {
    uint32_t V =
        D.Table[static_cast<size_t>(D.Start) * D.NumSymbols + (X - 1)];
    if (V != CanonicalDfa::NoState)
      A.addEdge(Root, X, Map[V]);
  }
  return A;
}

bool SymbolicEngine::expand(const SymbolicState &S, unsigned I,
                            std::vector<SymbolicState> &NewFrontier) {
  ++Statistics::counter("symbolic.transactions");
  PAutomaton In = rootedInput(C.numSharedStates(), S.Langs[I], S.Q);
  PostStarResult R = postStar(Bottomed[I].P, In, &Limits);
  if (!R.Complete)
    return false;

  for (QState Q2 = 0; Q2 < C.numSharedStates(); ++Q2) {
    Nfa Rooted = R.Automaton.rootedNfa({Q2});
    if (Rooted.isLanguageEmpty())
      continue;
    if (!Limits.chargeStep(Rooted.numStates()))
      return false;
    CanonicalDfa Lang = Rooted.determinize().canonicalize();
    SymbolicState Succ;
    Succ.Q = Q2;
    Succ.Langs = S.Langs;
    Succ.Langs[I] = std::move(Lang);
    auto [New, Ok] = addState(std::move(Succ), Bound + 1, I, &NewFrontier);
    (void)New;
    if (!Ok)
      return false;
  }
  return true;
}

SymbolicEngine::RoundStatus SymbolicEngine::advance() {
  ++Statistics::counter("symbolic.rounds");
  std::vector<SymbolicState> NewFrontier;
  for (const SymbolicState &S : Frontier) {
    uint32_t Produced = States.find(S)->second;
    for (unsigned I = 0; I < C.numThreads(); ++I) {
      // Skip the producer thread: its post* is transitively closed, so
      // re-expanding yields only language-subsumed rows.
      if (Produced & (1u << I))
        continue;
      if (!expand(S, I, NewFrontier))
        return RoundStatus::Exhausted;
    }
  }
  ++Bound;
  Frontier = std::move(NewFrontier);
  return RoundStatus::Ok;
}

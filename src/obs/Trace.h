//===-- obs/Trace.h - Structured span tracing -------------------*- C++ -*-===//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scoped span events (round, saturate, extract, commit, evict,
/// Z-overapprox, dataflow rounds, ...) rendered as Chrome `trace_event`
/// JSON -- the format Perfetto (https://ui.perfetto.dev) and
/// chrome://tracing load directly.  Enabled by `--trace-out FILE`;
/// disabled tracing costs one relaxed atomic load per probe.
///
/// Determinism contract (pinned by TraceDeterminismTest): span *content*
/// -- name, category, argument keys and values, and emission order -- is
/// a pure function of serially committed engine state, so it is
/// byte-identical at any `--jobs` for the same input.  Only three fields
/// are scheduling-dependent: `ts`, `dur` (wall-clock), and `tid` (the
/// worker that computed the span's work; 0 is the driver thread).  Two
/// categories split the events:
///
///   * "det":  emitted at serially ordered points; identical at any
///             job count after stripping ts/dur/tid,
///   * "wall": timing/scheduling telemetry (parallel derive batches,
///             per-level commits, anything whose existence depends on
///             the job count); excluded from the contract.
///
/// The stripping rule for comparing traces: drop every line whose event
/// has `"cat":"wall"` or `"ph":"M"`, then zero the `ts`, `dur` and `tid`
/// values.  Events are rendered one per line with a fixed key order
/// precisely so this is a line-local text transformation.
///
/// Emission discipline: Trace::span / ScopedSpan must only run at
/// serially ordered points (driver thread, or a phase where no other
/// thread emits).  Workers never emit directly -- parallel phases record
/// begin/end timestamps and worker ids into their task-local structs
/// (Trace::nowNs is safe anywhere), and the serial commit emits the span
/// with the recorded attribution.  Name/category/argument-key strings
/// must be literals (the buffer stores the pointers).
///
//===----------------------------------------------------------------------===//

#ifndef CUBA_OBS_TRACE_H
#define CUBA_OBS_TRACE_H

#include <cstdint>
#include <string>

namespace cuba::obs {

/// One span argument: a literal key and an integer value.
struct SpanArg {
  const char *Key;
  uint64_t Val;
};

class Trace {
public:
  /// Deterministic-content category (see file comment).
  static constexpr const char *CatDet = "det";
  /// Scheduling/timing category, stripped before cross-jobs comparison.
  static constexpr const char *CatWall = "wall";

  /// Whether a trace is being collected; every probe gates on this.
  static bool enabled();

  /// Clears any buffered events, resets the time origin, and enables
  /// collection.
  static void begin();

  /// Stops collection; buffered events remain renderable.
  static void end();

  /// Nanoseconds since begin() (0 when tracing is disabled -- callers
  /// may sample unconditionally on hot paths they already guard).
  static uint64_t nowNs();

  /// Buffers one complete span.  Serial emission points only; \p Name,
  /// \p Cat, and argument keys must be string literals.  \p Tid is the
  /// worker that performed the work (0 = driver).
  static void span(const char *Name, const char *Cat, uint32_t Tid,
                   uint64_t BeginNs, uint64_t EndNs, const SpanArg *Args,
                   uint32_t NumArgs);

  /// Renders the buffered events as a Chrome trace_event JSON document,
  /// one event per line, fixed key order
  /// {"name","cat","ph","ts","dur","pid","tid","args"}, with ph:"M"
  /// thread-name metadata rows for every tid seen.
  static std::string render();

  /// render() to \p Path; returns false (with errno pending) on I/O
  /// failure.
  static bool writeFile(const std::string &Path);
};

/// RAII span for serially executed scopes on the emitting thread:
/// samples begin at construction, emits at destruction with any args
/// added in between.  Inert when tracing is disabled at construction.
class ScopedSpan {
public:
  static constexpr uint32_t MaxArgs = 8;

  ScopedSpan(const char *Name, const char *Cat, uint32_t Tid = 0)
      : Name(Name), Cat(Cat), Tid(Tid), Active(Trace::enabled()),
        BeginNs(Active ? Trace::nowNs() : 0) {}

  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

  /// Attaches an argument (literal key); silently dropped past MaxArgs.
  void arg(const char *Key, uint64_t Val) {
    if (Active && NumArgs < MaxArgs)
      Args[NumArgs++] = {Key, Val};
  }

  ~ScopedSpan() {
    if (Active)
      Trace::span(Name, Cat, Tid, BeginNs, Trace::nowNs(), Args, NumArgs);
  }

private:
  const char *Name;
  const char *Cat;
  uint32_t Tid;
  bool Active;
  uint64_t BeginNs;
  SpanArg Args[MaxArgs];
  uint32_t NumArgs = 0;
};

} // namespace cuba::obs

#endif // CUBA_OBS_TRACE_H

//===-- models/Models.h - Benchmark program models ---------------*- C++ -*-=//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programmatic builders for every benchmark of the paper's evaluation
/// (Table 2) plus the running examples of Figs. 1 and 2.  The original
/// artefact site is offline; these models are faithful reconstructions
/// from the paper and its cited sources (see DESIGN.md, "Substitutions").
/// Models given as pushdown programs in the paper (Figs. 1 and 2) are
/// reproduced action by action; program-level benchmarks are written as
/// Boolean programs in src/models/*.bp.inc and compiled through the
/// frontend, exercising the full pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef CUBA_MODELS_MODELS_H
#define CUBA_MODELS_MODELS_H

#include <string>
#include <vector>

#include "pds/CpdsIO.h"

namespace cuba::models {

/// The two-thread running example of Fig. 1 (initial state <0 | 1, 4>).
/// No property is attached; the benches compute its reachability table.
CpdsFile buildFig1();

/// The Fig. 2 / Ex. 8 program (two recursive procedures foo and bar with
/// a shared flag x), identical to benchmark 6 "K-Induction" from [33].
/// Safe; the assertion is that both threads never finish with x values
/// that would re-enable foo's spin (encoded as a bad-state pattern that
/// is unreachable).
CpdsFile buildFig2();

/// Named access to every Table 2 benchmark instance.  Instances describe
/// one row, e.g. {"Bluetooth-1", "1+1"}.
struct BenchmarkInstance {
  std::string Suite;  ///< e.g. "Bluetooth-1".
  std::string Config; ///< Thread configuration, e.g. "2+1".
  bool ExpectSafe;    ///< The paper's Safe? column.
  bool ExpectFcr;     ///< The paper's FCR? column.
  CpdsFile File;
};

/// Bluetooth driver model (suites 1-3) with \p Stoppers stopper threads
/// and \p Adders adder threads.  \p Version selects the paper's variants:
/// 1 and 2 are buggy, 3 is the fixed driver.
CpdsFile buildBluetooth(int Version, unsigned Stoppers, unsigned Adders);

/// Concurrent binary-search-tree model (suite 4) with \p Inserters and
/// \p Searchers threads (Kung-Lehman style, recursion on tree descent).
CpdsFile buildBstInsert(unsigned Inserters, unsigned Searchers);

/// Parallel file crawler (suite 5): one non-recursive dispatcher plus
/// \p Workers recursive directory walkers.
CpdsFile buildFileCrawler(unsigned Workers);

/// Suite 6 "K-Induction": the Fig. 2 program.
CpdsFile buildKInduction();

/// Suite 7 "Proc-2" (from Chaki et al.): two recursive producers and two
/// non-recursive consumers over a one-slot channel.
CpdsFile buildProc2();

/// Suite 8 "Stefan-1" (the Schwoon-thesis PDS shape, Fig. 7 of App. C)
/// replicated over \p Threads identical threads.
CpdsFile buildStefan1(unsigned Threads);

/// Suite 9 "Dekker": the classic two-thread mutual-exclusion protocol
/// (the only recursion-free benchmark).
CpdsFile buildDekker();

/// All Table 2 rows in the paper's order.
std::vector<BenchmarkInstance> table2Instances();

} // namespace cuba::models

#endif // CUBA_MODELS_MODELS_H

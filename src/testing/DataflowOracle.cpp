//===-- testing/DataflowOracle.cpp - Weighted-vs-folded oracle ------------===//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//

#include "testing/DataflowOracle.h"

#include <algorithm>

#include "bp/AstPrinter.h"
#include "bp/Parser.h"
#include "bp/Sema.h"
#include "bp/Translate.h"
#include "core/CbaEngine.h"
#include "dataflow/DataflowEngine.h"
#include "pds/CpdsIO.h"
#include "psa/WeightedPostStar.h"
#include "testing/RandomBp.h"
#include "testing/RandomCpds.h"

using namespace cuba;
using namespace cuba::testing;

std::string DataflowOracleReport::str() const {
  std::string Out;
  for (const std::string &M : Mismatches) {
    if (!Out.empty())
      Out += "\n";
    Out += M;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Annotation injection
//===----------------------------------------------------------------------===//

namespace {

bp::StmtPtr makeTaint(bp::StmtKind K, const std::string &Var) {
  auto S = std::make_unique<bp::Stmt>();
  S->Kind = K;
  S->TaintVar = Var;
  return S;
}

/// Walks function bodies inserting annotations at random statement
/// boundaries, recursing into structured statements.
struct Injector {
  SplitMix64 &Rng;
  const std::vector<std::string> &Vars;
  unsigned Budget;
  unsigned Sources = 0, Sinks = 0;

  const std::string &pickVar() { return Vars[Rng.below(Vars.size())]; }

  bp::StmtPtr pick() {
    uint64_t R = Rng.below(10);
    bp::StmtKind K = R < 4   ? bp::StmtKind::Source
                     : R < 7 ? bp::StmtKind::Sink
                             : bp::StmtKind::Sanitize;
    if (K == bp::StmtKind::Source)
      ++Sources;
    if (K == bp::StmtKind::Sink)
      ++Sinks;
    return makeTaint(K, pickVar());
  }

  void walk(std::vector<bp::StmtPtr> &Body) {
    for (size_t I = 0; I <= Body.size(); ++I) {
      if (Budget && Rng.chance(0.18)) {
        Body.insert(Body.begin() + I, pick());
        --Budget;
        ++I; // Never annotate the annotation just inserted.
      }
      if (I < Body.size()) {
        walk(Body[I]->Body);
        walk(Body[I]->ElseBody);
      }
    }
  }
};

} // namespace

void cuba::testing::injectTaintAnnotations(bp::Program &P, uint64_t Seed) {
  if (P.SharedVars.empty())
    return;
  SplitMix64 Rng(Seed * 0x9e3779b97f4a7c15ull + 0xda7af10b);

  // Pick 1-3 distinct shared variables as the fact alphabet (partial
  // Fisher-Yates over a copy).
  std::vector<std::string> Vars = P.SharedVars;
  size_t NumFacts = 1 + Rng.below(std::min<size_t>(Vars.size(), 3));
  for (size_t I = 0; I < NumFacts; ++I)
    std::swap(Vars[I], Vars[I + Rng.below(Vars.size() - I)]);
  Vars.resize(NumFacts);

  Injector Inj{Rng, Vars, /*Budget=*/6};
  for (bp::Function &F : P.Functions) {
    if (F.Name == "main")
      continue;
    Inj.walk(F.Body);
  }

  // Guarantee the instance is meaningful: place a missing source or
  // sink at a random boundary of a random non-main function body.
  std::vector<bp::Function *> Fns;
  for (bp::Function &F : P.Functions)
    if (F.Name != "main")
      Fns.push_back(&F);
  if (Fns.empty())
    return;
  auto place = [&](bp::StmtKind K) {
    std::vector<bp::StmtPtr> &Body = Fns[Rng.below(Fns.size())]->Body;
    Body.insert(Body.begin() + Rng.below(Body.size() + 1),
                makeTaint(K, Vars[Rng.below(Vars.size())]));
  };
  if (!Inj.Sources)
    place(bp::StmtKind::Source);
  if (!Inj.Sinks)
    place(bp::StmtKind::Sink);
}

//===----------------------------------------------------------------------===//
// The lockstep comparison
//===----------------------------------------------------------------------===//

namespace {

/// Renders the symmetric difference of two sorted visible-state vectors
/// (folded coordinates, so \p C is the folded system).
std::string setDiff(const Cpds &C, const std::vector<VisibleState> &W,
                    const std::vector<VisibleState> &F) {
  std::string Out;
  std::vector<VisibleState> OnlyW, OnlyF;
  std::set_difference(W.begin(), W.end(), F.begin(), F.end(),
                      std::back_inserter(OnlyW));
  std::set_difference(F.begin(), F.end(), W.begin(), W.end(),
                      std::back_inserter(OnlyF));
  for (const VisibleState &V : OnlyW)
    Out += " weighted-only " + toString(C, V);
  for (const VisibleState &V : OnlyF)
    Out += " folded-only " + toString(C, V);
  return Out;
}

} // namespace

DataflowOracleReport
cuba::testing::runDataflowOracle(const bp::Program &P,
                                 const DataflowOracleOptions &Opts) {
  DataflowOracleReport Rep;
  auto Mismatch = [&](std::string S) {
    Rep.Mismatches.push_back(std::move(S));
  };

  // Round-trip through the printer so the oracle works on a fresh AST:
  // callers hand in programs whose slot/fact info may already be filled
  // (the random generator analyzes internally), and Sema is not
  // idempotent on an analyzed tree.
  auto Reparsed = bp::parseProgram(bp::printProgram(P));
  if (!Reparsed) {
    Mismatch("annotated program does not re-parse: " +
             Reparsed.error().str());
    return Rep;
  }
  bp::Program &RP = *Reparsed;

  auto Info = bp::analyzeProgram(RP);
  if (!Info) {
    Mismatch("frontend rejects the annotated program: " +
             Info.error().str());
    return Rep;
  }
  Rep.FactCount = Info->TaintFacts.size();

  // Pipeline A: the base translation plus the taint side table -- what
  // `cuba dataflow` runs through the weighted engine.
  bp::TaintInfo Taint;
  bp::TranslateOptions BaseOpts;
  BaseOpts.Taint = &Taint;
  auto Base = bp::translateProgram(RP, *Info, BaseOpts);
  if (!Base) {
    Mismatch("base translation rejected: " + Base.error().str());
    return Rep;
  }

  // Pipeline B: the naive product construction.  A size-guard
  // rejection here is legitimate (the 2^facts blowup the weighted
  // engine exists to avoid), not a mismatch.
  bp::TranslateOptions FoldOpts;
  FoldOpts.FoldTaint = true;
  auto Folded = bp::translateProgram(RP, *Info, FoldOpts);
  if (!Folded) {
    Rep.FoldedRejected = true;
    return Rep;
  }

  // The fold-bit isomorphism the comparison rides on: identical thread
  // structure and per-thread stack alphabets, control states widened by
  // exactly the fact bits.
  const Cpds &BC = Base->System;
  const Cpds &FC = Folded->System;
  if (BC.numThreads() != FC.numThreads()) {
    Mismatch("translation modes disagree on thread count");
    return Rep;
  }
  for (unsigned I = 0; I < BC.numThreads(); ++I) {
    if (BC.thread(I).numSymbols() != FC.thread(I).numSymbols()) {
      Mismatch("translation modes disagree on thread " + std::to_string(I) +
               "'s stack alphabet");
      return Rep;
    }
  }
  uint64_t WantShared =
      (static_cast<uint64_t>(1) << (Taint.SharedBits + Rep.FactCount)) + 1;
  if (FC.numSharedStates() != WantShared) {
    Mismatch("folded system has " + std::to_string(FC.numSharedStates()) +
             " control states, expected " + std::to_string(WantShared));
    return Rep;
  }

  if (Opts.InjectDropCombine)
    psa_testing::InjectDropMaskGrowth = true;

  // Lockstep rounds: the weighted engine's projected visible states
  // against the folded system's T(R_k).
  DataflowEngine W(BC, Taint, Opts.Limits);
  CbaEngine Ref(FC, Opts.Limits);
  Ref.setParallel(Opts.Pool);
  unsigned K = 0;
  while (true) {
    std::vector<VisibleState> NewW = W.newVisibleThisRound();
    std::vector<VisibleState> NewF = Ref.newVisibleThisRound();
    std::sort(NewW.begin(), NewW.end());
    std::sort(NewF.begin(), NewF.end());
    if (NewW != NewF)
      Mismatch("k=" + std::to_string(K) +
               ": weighted and folded visible rounds differ:" +
               setDiff(FC, NewW, NewF));
    Rep.KCompared = K;
    if (K >= Opts.MaxK)
      break;
    // Advance both engines; a budget stop truncates the comparison (the
    // interrupted round's discoveries are incomplete by construction).
    Rep.WeightedExhausted =
        W.advance() == DataflowEngine::RoundStatus::Exhausted;
    Rep.FoldedExhausted = Ref.advance() == CbaEngine::RoundStatus::Exhausted;
    if (Rep.WeightedExhausted || Rep.FoldedExhausted)
      break;
    ++K;
  }
  psa_testing::InjectDropMaskGrowth = false;

  // Verdict agreement: one shared scan over each side's visible set,
  // restricted to the rounds both engines completed.
  std::vector<SinkHit> WHits =
      scanSinkHits(W.visibleFirstSeen(), Taint, Rep.KCompared);
  std::vector<SinkHit> FHits =
      scanSinkHits(Ref.visibleFirstSeen(), Taint, Rep.KCompared);
  if (WHits != FHits)
    Mismatch("sink verdicts differ: weighted reports " +
             std::to_string(WHits.size()) + " hit(s), folded reports " +
             std::to_string(FHits.size()));
  Rep.Leak = !FHits.empty();
  return Rep;
}

std::optional<DataflowOracleReport>
cuba::testing::checkDataflowSeed(uint64_t Seed,
                                 const DataflowOracleOptions &Opts) {
  bp::Program P = generateRandomBp(Seed, bpShapeOptions(Seed));
  injectTaintAnnotations(P, Seed ^ 0xda7af10bull);
  DataflowOracleReport Rep = runDataflowOracle(P, Opts);
  if (Rep.FoldedRejected)
    return std::nullopt;
  return Rep;
}

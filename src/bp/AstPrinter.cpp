//===-- bp/AstPrinter.cpp - Boolean-program AST printer --------------------=//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//

#include "bp/AstPrinter.h"

#include "support/Unreachable.h"

using namespace cuba;
using namespace cuba::bp;

std::string cuba::bp::printExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::Const:
    return E.ConstValue ? "1" : "0";
  case ExprKind::Var:
    return E.Name;
  case ExprKind::Nondet:
    return "*";
  case ExprKind::Not:
    return "!" + printExpr(*E.Lhs);
  case ExprKind::And:
    return "(" + printExpr(*E.Lhs) + " & " + printExpr(*E.Rhs) + ")";
  case ExprKind::Or:
    return "(" + printExpr(*E.Lhs) + " | " + printExpr(*E.Rhs) + ")";
  case ExprKind::Xor:
    return "(" + printExpr(*E.Lhs) + " ^ " + printExpr(*E.Rhs) + ")";
  case ExprKind::Eq:
    return "(" + printExpr(*E.Lhs) + " = " + printExpr(*E.Rhs) + ")";
  case ExprKind::Neq:
    return "(" + printExpr(*E.Lhs) + " != " + printExpr(*E.Rhs) + ")";
  }
  cuba_unreachable("covered switch over ExprKind");
}

namespace {

/// Statement printer with indentation.
class StmtPrinter {
public:
  explicit StmtPrinter(std::string &Out) : Out(Out) {}

  void printBody(const std::vector<StmtPtr> &Body, unsigned Depth) {
    for (const StmtPtr &S : Body)
      printStmt(*S, Depth);
  }

private:
  void indent(unsigned Depth) { Out.append(2 * Depth, ' '); }

  void printStmt(const Stmt &S, unsigned Depth) {
    indent(Depth);
    if (!S.Label.empty())
      Out += S.Label + ": ";
    switch (S.Kind) {
    case StmtKind::Skip:
      Out += "skip;\n";
      return;
    case StmtKind::Goto: {
      Out += "goto ";
      for (size_t I = 0; I < S.GotoTargets.size(); ++I)
        Out += (I ? ", " : "") + S.GotoTargets[I];
      Out += ";\n";
      return;
    }
    case StmtKind::Assume:
      Out += "assume(" + printExpr(*S.Cond) + ");\n";
      return;
    case StmtKind::Assert:
      Out += "assert(" + printExpr(*S.Cond) + ");\n";
      return;
    case StmtKind::Assign: {
      for (size_t I = 0; I < S.AssignTargets.size(); ++I)
        Out += (I ? ", " : "") + S.AssignTargets[I];
      Out += " := ";
      for (size_t I = 0; I < S.AssignValues.size(); ++I)
        Out += (I ? ", " : "") + printExpr(*S.AssignValues[I]);
      if (S.Constrain)
        Out += " constrain " + printExpr(*S.Constrain);
      Out += ";\n";
      return;
    }
    case StmtKind::Call: {
      if (!S.CallResult.empty())
        Out += S.CallResult + " := ";
      Out += "call " + S.Callee + "(";
      for (size_t I = 0; I < S.CallArgs.size(); ++I)
        Out += (I ? ", " : "") + printExpr(*S.CallArgs[I]);
      Out += ");\n";
      return;
    }
    case StmtKind::Return:
      Out += S.RetValue ? "return " + printExpr(*S.RetValue) + ";\n"
                        : "return;\n";
      return;
    case StmtKind::ThreadCreate:
      Out += "thread_create(&" + S.ThreadFunc + ");\n";
      return;
    case StmtKind::Lock:
      Out += "lock;\n";
      return;
    case StmtKind::Unlock:
      Out += "unlock;\n";
      return;
    case StmtKind::Atomic:
      Out += "atomic {\n";
      printBody(S.Body, Depth + 1);
      indent(Depth);
      Out += "}\n";
      return;
    case StmtKind::While:
      Out += "while (" + printExpr(*S.Cond) + ") {\n";
      printBody(S.Body, Depth + 1);
      indent(Depth);
      Out += "}\n";
      return;
    case StmtKind::If:
      Out += "if (" + printExpr(*S.Cond) + ") {\n";
      printBody(S.Body, Depth + 1);
      indent(Depth);
      if (S.ElseBody.empty()) {
        Out += "}\n";
        return;
      }
      Out += "} else {\n";
      printBody(S.ElseBody, Depth + 1);
      indent(Depth);
      Out += "}\n";
      return;
    case StmtKind::Source:
      Out += "source(" + S.TaintVar + ");\n";
      return;
    case StmtKind::Sanitize:
      Out += "sanitize(" + S.TaintVar + ");\n";
      return;
    case StmtKind::Sink:
      Out += "sink(" + S.TaintVar + ");\n";
      return;
    }
  }

  std::string &Out;
};

} // namespace

std::string cuba::bp::printProgram(const Program &P) {
  std::string Out;
  if (!P.SharedVars.empty()) {
    Out += "decl ";
    for (size_t I = 0; I < P.SharedVars.size(); ++I)
      Out += (I ? ", " : "") + P.SharedVars[I];
    Out += ";\n\n";
  }
  for (const Function &F : P.Functions) {
    Out += std::string(F.ReturnsBool ? "bool " : "void ") + F.Name + "(";
    for (size_t I = 0; I < F.Params.size(); ++I)
      Out += (I ? ", " : "") + F.Params[I];
    Out += ") {\n";
    if (!F.Locals.empty()) {
      Out += "  decl ";
      for (size_t I = 0; I < F.Locals.size(); ++I)
        Out += (I ? ", " : "") + F.Locals[I];
      Out += ";\n";
    }
    StmtPrinter Printer(Out);
    Printer.printBody(F.Body, 1);
    Out += "}\n\n";
  }
  return Out;
}

//===-- exec/ParallelRound.h - Deterministic fork-join helpers --*- C++ -*-===//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fork-join layer the engines' round loops are written against:
/// index-ordered parallel iteration whose outputs land in slots keyed by
/// task (or chunk) index, never by worker or completion order.  A round
/// then has the shape
///
///   derive:  parallelChunks(...) fills Out[chunk] from frozen state,
///   commit:  a serial walk of Out[0..N) in index order performs every
///            order-sensitive effect (id assignment, dedup, budgets),
///
/// which is what makes `--jobs N` bit-identical to `--jobs 1`: the
/// parallel phase is a pure function of the chunk index, and the merge
/// order is the serial order by construction.  Chunk *boundaries* may
/// depend on the grain and job count; the engines keep per-chunk outputs
/// self-delimiting so concatenation in chunk order is independent of
/// where the cuts fall.
///
//===----------------------------------------------------------------------===//

#ifndef CUBA_EXEC_PARALLELROUND_H
#define CUBA_EXEC_PARALLELROUND_H

#include <algorithm>
#include <cassert>
#include <vector>

#include "exec/ThreadPool.h"

namespace cuba::exec {

/// Number of chunks parallelChunks() splits \p N items into at grain
/// \p Grain (the last chunk may be short).
inline size_t chunkCount(size_t N, size_t Grain) {
  assert(Grain > 0 && "chunk grain must be positive");
  return (N + Grain - 1) / Grain;
}

/// A grain that yields a few chunks per participant (for dynamic load
/// balance) without letting tiny chunks drown the work in scheduling:
/// clamped to [MinGrain, MaxGrain].
inline size_t adaptiveGrain(size_t N, unsigned Jobs, size_t MinGrain = 16,
                            size_t MaxGrain = 2048) {
  size_t Target = N / (4 * static_cast<size_t>(Jobs ? Jobs : 1));
  return std::clamp(Target, MinGrain, MaxGrain);
}

/// Runs Fn(Worker, Chunk, Begin, End) over [0, N) split into Grain-sized
/// half-open ranges, chunk c covering [c*Grain, min(N, (c+1)*Grain)).
template <typename Fn>
void parallelChunks(ThreadPool &Pool, size_t N, size_t Grain, Fn &&F) {
  if (N == 0)
    return;
  size_t Chunks = chunkCount(N, Grain);
  Pool.run(Chunks, [&](unsigned Worker, size_t Chunk) {
    size_t Begin = Chunk * Grain;
    size_t End = std::min(N, Begin + Grain);
    F(Worker, Chunk, Begin, End);
  });
}

/// Runs Fn(Worker, I) for every I in [0, N), Grain indices per task.
template <typename Fn>
void parallelFor(ThreadPool &Pool, size_t N, size_t Grain, Fn &&F) {
  parallelChunks(Pool, N, Grain,
                 [&](unsigned Worker, size_t, size_t Begin, size_t End) {
                   for (size_t I = Begin; I < End; ++I)
                     F(Worker, I);
                 });
}

/// Deterministic map: Out[I] = F(Worker, I), with results slotted by
/// index regardless of execution order.
template <typename T, typename Fn>
std::vector<T> parallelMap(ThreadPool &Pool, size_t N, size_t Grain, Fn &&F) {
  std::vector<T> Out(N);
  parallelFor(Pool, N, Grain,
              [&](unsigned Worker, size_t I) { Out[I] = F(Worker, I); });
  return Out;
}

/// Deterministic reduce: per-chunk partials are folded serially in chunk
/// index order, so non-commutative merges (first-seen semantics, ordered
/// appends) behave exactly as a serial left fold over [0, N).
/// \p Map is Fn(Worker, I, T &Partial); \p Merge is Fn(T &Acc, T &&Partial).
template <typename T, typename MapFn, typename MergeFn>
T parallelReduce(ThreadPool &Pool, size_t N, size_t Grain, T Init, MapFn &&Map,
                 MergeFn &&Merge) {
  if (N == 0)
    return Init;
  std::vector<T> Partials(chunkCount(N, Grain));
  parallelChunks(Pool, N, Grain,
                 [&](unsigned Worker, size_t Chunk, size_t Begin, size_t End) {
                   T &P = Partials[Chunk];
                   for (size_t I = Begin; I < End; ++I)
                     Map(Worker, I, P);
                 });
  T Acc = std::move(Init);
  for (T &P : Partials)
    Merge(Acc, std::move(P));
  return Acc;
}

} // namespace cuba::exec

#endif // CUBA_EXEC_PARALLELROUND_H

//===-- support/SymbolTable.h - String interning -----------------*- C++ -*-=//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings to dense 32-bit ids.  Shared-state and stack-symbol
/// names in parsed CPDS / Boolean-program inputs are interned once; the
/// analysis engines work purely on the ids.
///
//===----------------------------------------------------------------------===//

#ifndef CUBA_SUPPORT_SYMBOLTABLE_H
#define CUBA_SUPPORT_SYMBOLTABLE_H

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cuba {

/// Bidirectional map between names and dense ids [0, size()).
class SymbolTable {
public:
  /// Interns \p Name, returning its id; repeated calls with the same name
  /// return the same id.
  uint32_t intern(std::string_view Name) {
    auto It = IdByName.find(std::string(Name));
    if (It != IdByName.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(Names.size());
    Names.emplace_back(Name);
    IdByName.emplace(Names.back(), Id);
    return Id;
  }

  /// Returns the id of \p Name, or UINT32_MAX when it was never interned.
  uint32_t lookup(std::string_view Name) const {
    auto It = IdByName.find(std::string(Name));
    return It == IdByName.end() ? UINT32_MAX : It->second;
  }

  bool contains(std::string_view Name) const {
    return lookup(Name) != UINT32_MAX;
  }

  const std::string &name(uint32_t Id) const {
    assert(Id < Names.size() && "symbol id out of range");
    return Names[Id];
  }

  uint32_t size() const { return static_cast<uint32_t>(Names.size()); }
  bool empty() const { return Names.empty(); }

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, uint32_t> IdByName;
};

} // namespace cuba

#endif // CUBA_SUPPORT_SYMBOLTABLE_H

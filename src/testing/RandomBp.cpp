//===-- testing/RandomBp.cpp - Seeded random Boolean programs -------------===//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//

#include "testing/RandomBp.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bp/Sema.h"
#include "bp/Translate.h"
#include "testing/RandomCpds.h"

using namespace cuba;
using namespace cuba::bp;
using namespace cuba::testing;

namespace {

ExprPtr mkConst(bool V) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Const;
  E->ConstValue = V;
  return E;
}

ExprPtr mkNondet() {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Nondet;
  return E;
}

ExprPtr mkVar(std::string Name) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Var;
  E->Name = std::move(Name);
  return E;
}

ExprPtr mkNot(ExprPtr A) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Not;
  E->Lhs = std::move(A);
  return E;
}

ExprPtr mkBin(ExprKind K, ExprPtr L, ExprPtr R) {
  auto E = std::make_unique<Expr>();
  E->Kind = K;
  E->Lhs = std::move(L);
  E->Rhs = std::move(R);
  return E;
}

StmtPtr mkStmt(StmtKind K) {
  auto S = std::make_unique<Stmt>();
  S->Kind = K;
  return S;
}

/// A callable function's signature, known before bodies are generated
/// so calls can be emitted with the right arity.
struct Signature {
  std::string Name;
  bool ReturnsBool = false;
  unsigned NumParams = 0;
};

class Generator {
public:
  Generator(uint64_t Seed, const RandomBpOptions &O)
      // Decouple the stream from trivially correlated user seeds, with a
      // different salt than RandomCpds so `fuzz --mode bp` and
      // `fuzz --mode cpds` explore independent spaces at equal seeds.
      : Rng(Seed * 0x9e3779b97f4a7c15ull + 0xb00157ull), O(O) {}

  Program run() {
    Program P;
    unsigned NShared =
        static_cast<unsigned>(Rng.range(O.MinShared, O.MaxShared));
    for (unsigned I = 0; I < NShared; ++I)
      Shared.push_back("g" + std::to_string(I));
    P.SharedVars = Shared;

    // Signatures first: bodies may call any helper (forward references
    // are legal), so arities must be fixed up front.
    unsigned NHelpers = static_cast<unsigned>(Rng.range(0, O.MaxHelpers));
    for (unsigned I = 0; I < NHelpers; ++I) {
      Signature Sig;
      Sig.Name = "h" + std::to_string(I);
      Sig.ReturnsBool = Rng.chance(O.HelperReturnsBoolProb);
      Sig.NumParams = static_cast<unsigned>(Rng.range(0, O.MaxParams));
      Helpers.push_back(Sig);
    }
    unsigned NCreates =
        static_cast<unsigned>(Rng.range(O.MinThreads, O.MaxThreads));
    unsigned NEntries = static_cast<unsigned>(Rng.range(1, NCreates));
    for (unsigned I = 0; I < NEntries; ++I)
      Entries.push_back("t" + std::to_string(I));

    for (const Signature &Sig : Helpers)
      P.Functions.push_back(genFunction(Sig, /*IsEntry=*/false));
    for (const std::string &Name : Entries)
      P.Functions.push_back(
          genFunction(Signature{Name, false, 0}, /*IsEntry=*/true));

    // main: one thread_create per planned thread; every entry function
    // is used at least once, the rest repeat nondeterministically
    // (repeated entries are legal and give homogeneous thread pools).
    Function Main;
    Main.Name = "main";
    for (unsigned I = 0; I < NCreates; ++I) {
      auto S = mkStmt(StmtKind::ThreadCreate);
      S->ThreadFunc = I < NEntries
                          ? Entries[I]
                          : Entries[Rng.below(Entries.size())];
      Main.Body.push_back(std::move(S));
    }
    P.Functions.push_back(std::move(Main));
    return P;
  }

private:
  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  ExprPtr genExpr(unsigned Depth) {
    if (Depth == 0 || Rng.chance(0.45)) {
      uint64_t Pick = Rng.below(10);
      if (Pick < 6 && !Scope.empty())
        return mkVar(Scope[Rng.below(Scope.size())]);
      if (Pick < 8)
        return mkConst(Rng.chance(0.5));
      return mkNondet();
    }
    switch (Rng.below(6)) {
    case 0:
      return mkNot(genExpr(Depth - 1));
    case 1:
      return mkBin(ExprKind::And, genExpr(Depth - 1), genExpr(Depth - 1));
    case 2:
      return mkBin(ExprKind::Or, genExpr(Depth - 1), genExpr(Depth - 1));
    case 3:
      return mkBin(ExprKind::Xor, genExpr(Depth - 1), genExpr(Depth - 1));
    case 4:
      return mkBin(ExprKind::Eq, genExpr(Depth - 1), genExpr(Depth - 1));
    default:
      return mkBin(ExprKind::Neq, genExpr(Depth - 1), genExpr(Depth - 1));
    }
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  StmtPtr genAssign() {
    auto S = mkStmt(StmtKind::Assign);
    bool Parallel = Scope.size() >= 2 && Rng.chance(O.ParallelAssignProb);
    size_t A = Rng.below(Scope.size());
    S->AssignTargets.push_back(Scope[A]);
    S->AssignValues.push_back(genExpr(O.MaxExprDepth));
    if (Parallel) {
      size_t B = Rng.below(Scope.size() - 1);
      if (B >= A)
        ++B; // Distinct second target.
      S->AssignTargets.push_back(Scope[B]);
      S->AssignValues.push_back(genExpr(O.MaxExprDepth));
      if (Rng.chance(O.ConstrainProb))
        S->Constrain = genExpr(O.MaxExprDepth);
    }
    return S;
  }

  StmtPtr genCall(const Signature &Callee, bool BindResult) {
    auto S = mkStmt(StmtKind::Call);
    S->Callee = Callee.Name;
    for (unsigned I = 0; I < Callee.NumParams; ++I)
      S->CallArgs.push_back(genExpr(1));
    if (BindResult && Callee.ReturnsBool && !Scope.empty())
      S->CallResult = Scope[Rng.below(Scope.size())];
    return S;
  }

  StmtPtr genStmt(unsigned Depth, bool InAtomic, const Signature &Self) {
    double R = static_cast<double>(Rng.below(1000)) / 1000.0;

    if (R < O.CallProb) {
      // Self-recursion is guarded by `if (*)` so at least one path per
      // call site terminates without growing the stack.
      if (Rng.chance(O.RecurseProb)) {
        auto Guard = mkStmt(StmtKind::If);
        Guard->Cond = mkNondet();
        Guard->Body.push_back(genCall(Self, Rng.chance(0.5)));
        return Guard;
      }
      if (!Helpers.empty())
        return genCall(Helpers[Rng.below(Helpers.size())], Rng.chance(0.5));
      return genAssign();
    }
    R -= O.CallProb;

    if (R < O.AtomicProb) {
      if (Depth < O.MaxDepth && !InAtomic) {
        auto S = mkStmt(StmtKind::Atomic);
        S->Body = genBody(Depth + 1, /*InAtomic=*/true, Self);
        return S;
      }
      return genAssign();
    }
    R -= O.AtomicProb;

    if (R < O.BranchProb) {
      if (Depth < O.MaxDepth) {
        bool Loop = Rng.chance(0.4);
        auto S = mkStmt(Loop ? StmtKind::While : StmtKind::If);
        S->Cond = genExpr(O.MaxExprDepth);
        S->Body = genBody(Depth + 1, InAtomic, Self);
        if (!Loop && Rng.chance(0.5))
          S->ElseBody = genBody(Depth + 1, InAtomic, Self);
        return S;
      }
      return genAssign();
    }
    R -= O.BranchProb;

    if (R < O.AssertProb) {
      auto S = mkStmt(StmtKind::Assert);
      // Bias towards satisfiable asserts so a fuzz batch mixes SAFE and
      // BUG verdicts instead of failing on the first statement.
      S->Cond = Rng.chance(0.5) ? mkBin(ExprKind::Or, genExpr(1), mkConst(true))
                                : genExpr(O.MaxExprDepth);
      return S;
    }
    R -= O.AssertProb;

    if (R < O.AssumeProb) {
      auto S = mkStmt(StmtKind::Assume);
      S->Cond = genExpr(O.MaxExprDepth);
      return S;
    }

    if (Rng.chance(0.12))
      return mkStmt(StmtKind::Skip);
    return genAssign();
  }

  std::vector<StmtPtr> genBody(unsigned Depth, bool InAtomic,
                               const Signature &Self) {
    std::vector<StmtPtr> Body;
    unsigned N = static_cast<unsigned>(Rng.range(O.MinStmts, O.MaxStmts));
    for (unsigned I = 0; I < N; ++I)
      Body.push_back(genStmt(Depth, InAtomic, Self));
    return Body;
  }

  /// Gathers every statement a label may sit on and every body a jump
  /// may be inserted into.  If/While arms are included (labels inside an
  /// arm give jumps *into* it, jump sites inside give jumps *out*);
  /// atomic bodies are excluded entirely -- a jump across the lock
  /// boundary would unbalance the synthetic lock acquisition.  While
  /// statements carry no else arm in the surface syntax, so only If
  /// else-bodies are insertable.
  void collectGotoSites(std::vector<StmtPtr> &Body, std::vector<Stmt *> &Sites,
                        std::vector<std::vector<StmtPtr> *> &Bodies) {
    Bodies.push_back(&Body);
    for (StmtPtr &S : Body) {
      Sites.push_back(S.get());
      if (S->Kind == StmtKind::While)
        collectGotoSites(S->Body, Sites, Bodies);
      if (S->Kind == StmtKind::If) {
        collectGotoSites(S->Body, Sites, Bodies);
        collectGotoSites(S->ElseBody, Sites, Bodies);
      }
    }
  }

  /// Sprinkles unstructured control flow over a generated body: labels
  /// on up to three statements anywhere outside atomics (possibly one
  /// that no jump ever targets -- unreachable labels must stay legal),
  /// then one or two guarded nondeterministic multi-target jumps
  /// `if (*) { goto ...; }` at random positions.  A jump inserted before
  /// its targets is a forward edge, after them a back edge, and label
  /// and jump positions in different branch arms give jumps into and
  /// out of arms.  Every jump stays guarded so back edges cannot force
  /// divergence on their own.
  void addGotos(std::vector<StmtPtr> &Body) {
    if (Body.empty() || !Rng.chance(O.GotoLoopProb))
      return;
    std::vector<Stmt *> Sites;
    std::vector<std::vector<StmtPtr> *> Bodies;
    collectGotoSites(Body, Sites, Bodies);

    unsigned NLabels =
        1 + static_cast<unsigned>(
                Rng.below(std::min<uint64_t>(3, Sites.size())));
    std::vector<std::string> Labels;
    for (unsigned I = 0; I < NLabels; ++I) {
      Stmt *S = Sites[Rng.below(Sites.size())];
      if (!S->Label.empty())
        continue; // Re-picked a labeled site: just place fewer labels.
      S->Label = "L" + std::to_string(Labels.size());
      Labels.push_back(S->Label);
    }

    // Sometimes withhold the last label from the target pool, leaving it
    // unreferenced.
    std::vector<std::string> Targets = Labels;
    if (Targets.size() > 1 && Rng.chance(0.4))
      Targets.pop_back();

    unsigned NJumps = Rng.chance(0.4) ? 2 : 1;
    for (unsigned J = 0; J < NJumps; ++J) {
      std::vector<std::string> Picked;
      for (const std::string &L : Targets)
        if (Rng.chance(0.6))
          Picked.push_back(L);
      if (Picked.empty())
        Picked.push_back(Targets[Rng.below(Targets.size())]);
      auto Jump = mkStmt(StmtKind::Goto);
      Jump->GotoTargets = std::move(Picked);
      auto Guard = mkStmt(StmtKind::If);
      Guard->Cond = mkNondet();
      Guard->Body.push_back(std::move(Jump));
      std::vector<StmtPtr> &Dst = *Bodies[Rng.below(Bodies.size())];
      Dst.insert(Dst.begin() + Rng.below(Dst.size() + 1), std::move(Guard));
    }
  }

  Function genFunction(const Signature &Sig, bool IsEntry) {
    Function F;
    F.Name = Sig.Name;
    F.ReturnsBool = Sig.ReturnsBool;
    for (unsigned I = 0; I < Sig.NumParams; ++I)
      F.Params.push_back("p" + std::to_string(I));
    unsigned NLocals = static_cast<unsigned>(Rng.range(0, O.MaxLocals));
    for (unsigned I = 0; I < NLocals; ++I)
      F.Locals.push_back("v" + std::to_string(I));

    Scope.clear();
    for (const std::string &V : F.Params)
      Scope.push_back(V);
    for (const std::string &V : F.Locals)
      Scope.push_back(V);
    for (const std::string &V : Shared)
      Scope.push_back(V);

    F.Body = genBody(0, /*InAtomic=*/false, Sig);
    addGotos(F.Body);
    if (Sig.ReturnsBool) {
      auto Ret = mkStmt(StmtKind::Return);
      Ret->RetValue = genExpr(O.MaxExprDepth);
      F.Body.push_back(std::move(Ret));
    }
    (void)IsEntry;
    return F;
  }

  SplitMix64 Rng;
  const RandomBpOptions &O;
  std::vector<std::string> Shared;
  std::vector<Signature> Helpers;
  std::vector<std::string> Entries;
  std::vector<std::string> Scope; // Visible variables while in a body.
};

} // namespace

bp::Program cuba::testing::generateRandomBp(uint64_t Seed,
                                            const RandomBpOptions &Opts) {
  Generator G(Seed, Opts);
  Program P = G.run();

  // Unconditional (not an assert): a generator emitting a program the
  // frontend rejects must fail loudly even in NDEBUG builds.  The
  // returned program is analyzed in place as a side effect; callers
  // that need a fresh AST re-parse the printed text (the fuzz oracle
  // does exactly that).
  auto Info = analyzeProgram(P);
  if (!Info) {
    std::fprintf(stderr, "RandomBp: seed %llu produced an ill-formed "
                         "program: %s\n",
                 static_cast<unsigned long long>(Seed),
                 Info.error().str().c_str());
    std::abort();
  }
  if (auto File = translateProgram(P, *Info); !File) {
    std::fprintf(stderr, "RandomBp: seed %llu produced an untranslatable "
                         "program: %s\n",
                 static_cast<unsigned long long>(Seed),
                 File.error().str().c_str());
    std::abort();
  }
  return P;
}

RandomBpOptions cuba::testing::bpShapeOptions(uint64_t Seed) {
  RandomBpOptions O;
  switch (Seed % 6) {
  case 0: // The default mixed shape.
    break;
  case 1: // Recursive call chains: helper-heavy, calls dominate.
    O.MaxHelpers = 3;
    O.CallProb = 0.5;
    O.RecurseProb = 0.6;
    O.MaxStmts = 3;
    O.AtomicProb = 0;
    O.GotoLoopProb = 0;
    break;
  case 2: // Atomic sections: lock-protocol shapes under contention.
    O.MinThreads = 2;
    O.AtomicProb = 0.45;
    O.AssertProb = 0.25;
    O.CallProb = 0.05;
    break;
  case 3: // Parallel assignments filtered by constrain.
    O.MinShared = 2;
    O.MaxShared = 4;
    O.ParallelAssignProb = 0.85;
    O.ConstrainProb = 0.9;
    O.CallProb = 0.05;
    O.BranchProb = 0.1;
    break;
  case 4: // Gotos everywhere: unstructured control flow, no calls.
    O.GotoLoopProb = 1.0;
    O.CallProb = 0;
    O.BranchProb = 0.15;
    O.MaxStmts = 5;
    break;
  case 5: // Multi-thread mains: wide interleaving, small bodies.
    O.MinThreads = 3;
    O.MaxThreads = 4;
    O.MaxStmts = 2;
    O.MaxDepth = 1;
    O.MaxHelpers = 1;
    break;
  }
  return O;
}

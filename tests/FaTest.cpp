//===-- tests/FaTest.cpp - Unit tests for the finite-automata library ------=//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "fa/Dfa.h"
#include "fa/Nfa.h"

using namespace cuba;

namespace {

/// a(b)*: accepts "a", "ab", "abb", ...
Nfa makeAB() {
  Nfa A(2); // symbols 1 = a, 2 = b
  uint32_t S0 = A.addState();
  uint32_t S1 = A.addState();
  A.setInitial(S0);
  A.setAccepting(S1);
  A.addEdge(S0, 1, S1);
  A.addEdge(S1, 2, S1);
  return A;
}

} // namespace

TEST(Nfa, AcceptsBasic) {
  Nfa A = makeAB();
  EXPECT_TRUE(A.accepts({1}));
  EXPECT_TRUE(A.accepts({1, 2, 2}));
  EXPECT_FALSE(A.accepts({}));
  EXPECT_FALSE(A.accepts({2}));
  EXPECT_FALSE(A.accepts({1, 1}));
}

TEST(Nfa, EpsilonClosureAndAcceptance) {
  Nfa A(1);
  uint32_t S0 = A.addState();
  uint32_t S1 = A.addState();
  uint32_t S2 = A.addState();
  A.setInitial(S0);
  A.setAccepting(S2);
  A.addEdge(S0, EpsSym, S1);
  A.addEdge(S1, 1, S2);
  A.addEdge(S2, EpsSym, S0);
  EXPECT_TRUE(A.accepts({1}));
  EXPECT_TRUE(A.accepts({1, 1}));
  EXPECT_FALSE(A.accepts({}));

  std::vector<uint32_t> C = {S0};
  A.epsilonClosure(C);
  EXPECT_EQ(C, (std::vector<uint32_t>{S0, S1}));
}

TEST(Nfa, EmptinessAndUsefulStates) {
  Nfa A(1);
  uint32_t S0 = A.addState();
  uint32_t S1 = A.addState();
  uint32_t S2 = A.addState(); // Accepting but unreachable.
  A.setInitial(S0);
  A.addEdge(S0, 1, S1);
  A.setAccepting(S2);
  EXPECT_TRUE(A.isLanguageEmpty());
  EXPECT_TRUE(A.usefulStates().empty());
  A.addEdge(S1, 1, S2);
  EXPECT_FALSE(A.isLanguageEmpty());
  EXPECT_EQ(A.usefulStates().size(), 3u);
}

TEST(Nfa, FinitenessDetectsPumpableCycle) {
  Nfa A = makeAB(); // b-loop on an accepting state: infinite.
  EXPECT_FALSE(A.isLanguageFinite());
}

TEST(Nfa, FinitenessOfAcyclicAutomaton) {
  Nfa A(2);
  uint32_t S0 = A.addState(), S1 = A.addState(), S2 = A.addState();
  A.setInitial(S0);
  A.setAccepting(S2);
  A.addEdge(S0, 1, S1);
  A.addEdge(S1, 2, S2);
  A.addEdge(S0, 2, S2);
  EXPECT_TRUE(A.isLanguageFinite());
}

TEST(Nfa, FinitenessIgnoresEpsilonOnlyCycles) {
  // Two states in an epsilon cycle plus one symbol edge to acceptance:
  // the language is just {a}, finite, despite the graph cycle.
  Nfa A(1);
  uint32_t S0 = A.addState(), S1 = A.addState(), S2 = A.addState();
  A.setInitial(S0);
  A.setAccepting(S2);
  A.addEdge(S0, EpsSym, S1);
  A.addEdge(S1, EpsSym, S0);
  A.addEdge(S1, 1, S2);
  EXPECT_TRUE(A.isLanguageFinite());
}

TEST(Nfa, FinitenessIgnoresUselessCycles) {
  // A pumpable cycle that cannot reach acceptance does not count.
  Nfa A(1);
  uint32_t S0 = A.addState(), S1 = A.addState(), Dead = A.addState();
  A.setInitial(S0);
  A.setAccepting(S1);
  A.addEdge(S0, 1, S1);
  A.addEdge(S0, 1, Dead);
  A.addEdge(Dead, 1, Dead);
  EXPECT_TRUE(A.isLanguageFinite());
}

TEST(Nfa, LanguageEnumeration) {
  Nfa A = makeAB();
  auto L = A.languageUpTo(3);
  ASSERT_EQ(L.size(), 3u);
  EXPECT_EQ(L[0], (std::vector<Sym>{1}));
  EXPECT_EQ(L[1], (std::vector<Sym>{1, 2}));
  EXPECT_EQ(L[2], (std::vector<Sym>{1, 2, 2}));
}

TEST(Dfa, DeterminizeMatchesNfa) {
  Nfa A(2);
  // (a|b)*a: nondeterministic.
  uint32_t S0 = A.addState(), S1 = A.addState();
  A.setInitial(S0);
  A.setAccepting(S1);
  A.addEdge(S0, 1, S0);
  A.addEdge(S0, 2, S0);
  A.addEdge(S0, 1, S1);
  Dfa D = A.determinize();
  for (auto W : A.languageUpTo(5))
    EXPECT_TRUE(D.accepts(W));
  EXPECT_FALSE(D.accepts({}));
  EXPECT_FALSE(D.accepts({2}));
  EXPECT_TRUE(D.accepts({2, 1}));
  EXPECT_TRUE(D.accepts({1, 1, 1}));
}

TEST(Dfa, MinimizeReducesStateCount) {
  // Build a DFA for "words over {a} of even length" with redundant
  // states: 4 states cycling, minimal is 2.
  Dfa D(1, 4, 0);
  for (uint32_t S = 0; S < 4; ++S)
    D.setNext(S, 1, (S + 1) % 4);
  D.setAccepting(0);
  D.setAccepting(2);
  Dfa M = D.minimize();
  EXPECT_EQ(M.numStates(), 2u);
  EXPECT_TRUE(M.accepts({}));
  EXPECT_FALSE(M.accepts({1}));
  EXPECT_TRUE(M.accepts({1, 1}));
}

TEST(Dfa, CanonicalFormEqualityIsLanguageEquality) {
  // Two structurally different NFAs for the same language a(b)*.
  Nfa A = makeAB();
  Nfa B(2);
  uint32_t T0 = B.addState(), T1 = B.addState(), T2 = B.addState();
  B.setInitial(T0);
  B.setAccepting(T1);
  B.setAccepting(T2);
  B.addEdge(T0, 1, T1);
  B.addEdge(T1, 2, T2);
  B.addEdge(T2, 2, T2);
  CanonicalDfa CA = A.determinize().canonicalize();
  CanonicalDfa CB = B.determinize().canonicalize();
  EXPECT_EQ(CA, CB);
  EXPECT_EQ(CA.hash(), CB.hash());

  // And a genuinely different language: a(b)* plus the empty word.
  Nfa C2 = makeAB();
  // Re-build with accepting initial state.
  Nfa C3(2);
  uint32_t U0 = C3.addState(), U1 = C3.addState();
  C3.setInitial(U0);
  C3.setAccepting(U0);
  C3.setAccepting(U1);
  C3.addEdge(U0, 1, U1);
  C3.addEdge(U1, 2, U1);
  EXPECT_NE(C2.determinize().canonicalize(),
            C3.determinize().canonicalize());
}

TEST(Dfa, CanonicalEmptyLanguage) {
  Nfa A(3);
  uint32_t S0 = A.addState();
  A.setInitial(S0); // No accepting states at all.
  CanonicalDfa C = A.determinize().canonicalize();
  EXPECT_EQ(C.Start, CanonicalDfa::NoState);
  EXPECT_EQ(C.numStates(), 0u);

  Nfa B(3);
  uint32_t T0 = B.addState();
  uint32_t T1 = B.addState();
  B.setInitial(T0);
  B.setAccepting(T1); // Accepting but unreachable.
  EXPECT_EQ(B.determinize().canonicalize(), C);
}

TEST(Dfa, CanonicalEpsilonOnlyLanguage) {
  Nfa A(2);
  uint32_t S0 = A.addState();
  A.setInitial(S0);
  A.setAccepting(S0);
  CanonicalDfa C = A.determinize().canonicalize();
  EXPECT_EQ(C.numStates(), 1u);
  EXPECT_EQ(C.Start, 0u);
  EXPECT_TRUE(C.Accepting[0]);
  // No outgoing transitions survive dead-state elimination.
  for (uint32_t X = 0; X < C.NumSymbols; ++X)
    EXPECT_EQ(C.Table[X], CanonicalDfa::NoState);
}

//===----------------------------------------------------------------------===//
// Property-style sweep: canonicalisation is sound and complete on a
// family of small regular languages L(i, j) = { a^i b^j' : j' <= j }.
//===----------------------------------------------------------------------===//

namespace {

Nfa makeAiBj(unsigned I, unsigned J, bool Padded) {
  Nfa A(2);
  uint32_t Cur = A.addState();
  A.setInitial(Cur);
  for (unsigned K = 0; K < I; ++K) {
    uint32_t Next = A.addState();
    A.addEdge(Cur, 1, Next);
    Cur = Next;
  }
  A.setAccepting(Cur);
  for (unsigned K = 0; K < J; ++K) {
    uint32_t Next = A.addState();
    A.addEdge(Cur, 2, Next);
    A.setAccepting(Next);
    Cur = Next;
  }
  if (Padded) {
    // Extra useless structure that must not affect the canonical form.
    uint32_t Dead = A.addState();
    A.addEdge(Dead, 1, Dead);
    uint32_t Eps = A.addState();
    A.addEdge(0, EpsSym, Eps);
    A.addEdge(Eps, EpsSym, 0);
  }
  return A;
}

} // namespace

class CanonicalSweep : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(CanonicalSweep, PaddedAndPlainAgree) {
  auto [I, J] = GetParam();
  CanonicalDfa Plain = makeAiBj(I, J, false).determinize().canonicalize();
  CanonicalDfa Pad = makeAiBj(I, J, true).determinize().canonicalize();
  EXPECT_EQ(Plain, Pad);
}

TEST_P(CanonicalSweep, DistinctLanguagesDiffer) {
  auto [I, J] = GetParam();
  CanonicalDfa C = makeAiBj(I, J, false).determinize().canonicalize();
  CanonicalDfa Other =
      makeAiBj(I + 1, J, false).determinize().canonicalize();
  EXPECT_NE(C, Other);
}

INSTANTIATE_TEST_SUITE_P(SmallLanguages, CanonicalSweep,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 4)));

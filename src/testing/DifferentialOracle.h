//===-- testing/DifferentialOracle.h - Cross-engine oracle ------*- C++ -*-===//
//
// Part of the CUBA project, an implementation of the PLDI 2018 paper
// "CUBA: Interprocedural Context-UnBounded Analysis of Concurrent Programs".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential oracle behind the randomized test suite and the
/// `cuba fuzz` subcommand.  It runs the explicit engine (CbaEngine), the
/// symbolic engine (SymbolicEngine), and the three CbaBaseline variants
/// on one instance under a shared resource budget and cross-checks every
/// property the implementation promises:
///
///  * per-k agreement: T(R_k) and T(S_k) discover exactly the same new
///    visible states in every completed round (App. E ties S_k to R_k),
///  * first-violation agreement: both engines witness a bad visible
///    state at the same context bound,
///  * baseline consistency: runCbaBaseline at bound K reports the bug
///    bound and visible-state count of the explicit engine's R_K, for
///    all three storage variants,
///  * FCR consistency: checkFcr is deterministic, an incomplete check
///    never claims FCR, and the per-thread verdicts match Holds,
///  * driver agreement: when both the explicit-combined and the symbolic
///    top-level procedures conclude within budget, their verdicts and
///    bug bounds coincide.
///
/// Budget exhaustion is never an error: the oracle compares only rounds
/// both engines completed and reports how far it got.
///
//===----------------------------------------------------------------------===//

#ifndef CUBA_TESTING_DIFFERENTIALORACLE_H
#define CUBA_TESTING_DIFFERENTIALORACLE_H

#include <string>
#include <vector>

#include "pds/CpdsIO.h"
#include "support/Limits.h"

namespace cuba::exec {
class ThreadPool;
} // namespace cuba::exec

namespace cuba::testing {

/// Configuration for one oracle run.
struct OracleOptions {
  /// Deepest context bound to compare round by round.
  unsigned MaxK = 5;
  /// Budget for each engine run (kept small: random instances without
  /// FCR can blow up explicitly, and exhaustion just truncates the
  /// comparison).  Deliberately no wall-clock limit: the state and step
  /// budgets already bound every run, and a time cutoff would make how
  /// far the comparison gets -- and hence whether a mismatch is seen --
  /// depend on machine speed, breaking seed reproducibility.
  ResourceLimits Limits{20'000, 2'000'000, 16, 0};
  /// Also run the three CbaBaseline variants and cross-check them.
  bool CheckBaselines = true;
  /// Also run the two top-level procedures and compare their verdicts.
  bool CheckDrivers = true;
  /// Testing hook for the oracle's own tests (the "mutation check"):
  /// pretend the explicit engine never discovered its N-th visible state
  /// (1-based).  A correct oracle must then report a mismatch on any
  /// instance with at least N reachable visible states.  0 = disabled.
  unsigned InjectDropVisible = 0;
  /// When set (and holding more than one job), every engine the oracle
  /// runs -- the lockstep pair and the phase-4 drivers -- executes its
  /// rounds in parallel on this pool.  Parallel rounds are bit-identical
  /// to serial ones, so reports (and fuzz seeds) stay reproducible
  /// across job counts.
  exec::ThreadPool *Pool = nullptr;
};

/// The outcome of one oracle run.
struct OracleReport {
  /// One human-readable line per detected disagreement; empty == pass.
  std::vector<std::string> Mismatches;
  /// Rounds compared before a budget stopped an engine (k = 0..KCompared).
  unsigned KCompared = 0;
  bool ExplicitExhausted = false;
  bool SymbolicExhausted = false;
  /// Which budget axis stopped each engine (None when it was not
  /// stopped).  Carried so fuzz reports can say *why* an instance was
  /// truncated (steps vs memory vs states).
  ExhaustKind ExplicitReason = ExhaustKind::None;
  ExhaustKind SymbolicReason = ExhaustKind::None;
  /// Peak logical footprint over the phase-1 lockstep pair (the max of
  /// the two engines' trackers), for `cuba fuzz --stats` per-seed lines.
  uint64_t PeakBytes = 0;

  bool ok() const { return Mismatches.empty(); }
  /// All mismatch lines joined for diagnostics.
  std::string str() const;
};

/// Runs every cross-check on \p File.
OracleReport runDifferentialOracle(const CpdsFile &File,
                                   const OracleOptions &Opts = {});

} // namespace cuba::testing

#endif // CUBA_TESTING_DIFFERENTIALORACLE_H
